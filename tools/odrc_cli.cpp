// odrc — the command-line front end of the engine (interface layer).
//
// Usage:
//   odrc check <layout.gds> <rules.deck> [--mode=seq|par] [--report=out.txt]
//   odrc generate <design> <out.gds> [--scale=1.0] [--inject=N]
//   odrc inspect <layout.gds>
//   odrc deck-template
//
// `check` reads a GDSII stream and a text rule deck (see
// src/engine/deck_parser.hpp for the format), runs the engine and prints a
// violation summary; `generate` emits one of the six synthetic benchmark
// designs; `deck-template` prints a ready-to-edit ASAP7-like deck.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/deck_parser.hpp"
#include "engine/plan.hpp"
#include "engine/snapshot.hpp"
#include "engine/snapshot_store.hpp"
#include "lefdef/lefdef.hpp"
#include "render/render.hpp"
#include "report/violation_db.hpp"
#include "engine/engine.hpp"
#include "gdsii/reader.hpp"
#include "gdsii/writer.hpp"
#include "infra/bench_harness.hpp"
#include "infra/timer.hpp"
#include "infra/trace.hpp"
#include "engine/shard.hpp"
#include "serve/client.hpp"
#include "serve/coord.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "workload/workload.hpp"

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace {

using namespace odrc;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  odrc check <layout.gds> <rules.deck> [--mode=seq|par] [--batch=on|off]\n"
               "             [--simd=auto|off|avx2] [--window=x1,y1,x2,y2] [--report=out.txt]\n"
               "             [--markers=out.gds] [--json=out.json] [--trace=out_trace.json]\n"
               "             [--metrics] [--bench-json=out.json]\n"
               "             (also accepts --lef=<f> --def=<f>)\n"
               "  odrc generate <design> <out.gds> [--scale=1.0] [--inject=N]\n"
               "  odrc inspect <layout.gds>\n"
               "  odrc render <layout.gds> <out.svg> [--deck=rules.deck]\n"
               "  odrc diff <baseline_report.txt> <current_report.txt>\n"
               "  odrc snapshot build <layout.gds> <out.snap>\n"
               "  odrc snapshot info <file.snap>\n"
               "  odrc serve <layout.gds> <rules.deck> --socket=PATH|--listen=EP [--workers=N]\n"
               "             [--mode=seq|par] [--trace=out_trace.json] [--snapshot=PATH]\n"
               "  odrc coord <layout.gds> <rules.deck> --socket=PATH|--listen=EP --shards=N\n"
               "             [--worker=EP ...] [--tcp] [--workers=N] [--mode=seq|par]\n"
               "             [--snapshot=PATH] (spawns N workers unless --worker given)\n"
               "  odrc client --socket=PATH|EP [--session=N]\n"
               "             <ping|check|edit <script|->|recheck|diff|stats|open <gds> <deck>|\n"
               "              check_region <x1> <y1> <x2> <y2>|query <x1> <y1> <x2> <y2> [keys]|\n"
               "              subscribe [<x1> <y1> <x2> <y2>] [--count=N] [--timeout=MS]|\n"
               "              unsubscribe <sub_id>|reload <file.snap>|close|shutdown>\n"
               "  odrc deck-template\n"
               "  odrc version\n"
               "  endpoints EP: unix:/path, tcp:host:port, or a bare unix path\n");
  return 2;
}

std::string opt_value(int argc, char** argv, const char* name, const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

// Every occurrence of a repeatable option ("--worker=EP --worker=EP ...").
std::vector<std::string> opt_values(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      out.emplace_back(argv[i] + prefix.size());
    }
  }
  return out;
}

// "--window=x1,y1,x2,y2" -> rect; nullopt when absent, throws on malformed.
std::optional<rect> parse_window(int argc, char** argv) {
  const std::string s = opt_value(argc, argv, "window", "");
  if (s.empty()) return std::nullopt;
  rect w;
  char comma;
  std::istringstream in(s);
  if (!(in >> w.x_min >> comma >> w.y_min >> comma >> w.x_max >> comma >> w.y_max) ||
      w.empty()) {
    throw std::runtime_error("--window expects x1,y1,x2,y2 with x1<=x2, y1<=y2");
  }
  return w;
}

int cmd_check(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string gds = argv[2];
  const std::string deck_path = argv[3];
  const std::string mode_s = opt_value(argc, argv, "mode", "seq");
  const std::string report_path = opt_value(argc, argv, "report", "");
  const std::string markers_path = opt_value(argc, argv, "markers", "");
  const std::string json_path = opt_value(argc, argv, "json", "");

  timer t_total;
  const std::string lef = opt_value(argc, argv, "lef", "");
  const std::string def = opt_value(argc, argv, "def", "");
  const db::library lib = (!lef.empty() && !def.empty())
                              ? lefdef::read_lef_def(lef, def,
                                                     {{"M1", 19}, {"M2", 20}, {"M3", 30},
                                                      {"V1", 21}, {"V2", 25}, {"PWR", 18}})
                              : gdsii::read(gds);
  const auto deck = rules::parse_deck_file(deck_path);
  std::printf("loaded %s: %zu cells, %llu flat polygons; %zu rules from %s\n", gds.c_str(),
              lib.cell_count(), static_cast<unsigned long long>(lib.expanded_polygon_count()),
              deck.size(), deck_path.c_str());

  const std::string batch_s = opt_value(argc, argv, "batch", "on");
  engine_config cfg;
  cfg.run_mode = mode_s == "par" ? engine::mode::parallel : engine::mode::sequential;
  cfg.batch = batch_s != "off";
  const std::string simd_s = opt_value(argc, argv, "simd", "auto");
  if (auto m = simd::parse_mode(simd_s.c_str())) {
    cfg.simd = *m;
  } else {
    std::fprintf(stderr, "unknown --simd value '%s' (want auto|off|avx2)\n", simd_s.c_str());
    return usage();
  }
  drc_engine eng(cfg);
  eng.add_rules(deck);

  const std::string trace_path = opt_value(argc, argv, "trace", "");
  const bool want_metrics = has_flag(argc, argv, "metrics");
  if (!trace_path.empty() || want_metrics) trace::recorder::instance().enable();

  report::violation_db db(lib.name());
  const std::optional<rect> window = parse_window(argc, argv);
  timer t_check;
  engine::deck_report dr;
  if (window) {
    // Region-of-interest run: compile once, share one snapshot, and route
    // through the plan-level check_region (the serve sessions' warm path).
    std::vector<engine::exec_plan> plans;
    plans.reserve(deck.size());
    for (const rules::rule& r : deck) plans.push_back(engine::compile_plan(r));
    engine::layout_snapshot snap(lib);
    dr = eng.check_region(lib, plans, snap, *window);
  } else {
    dr = eng.check_deck(lib);
  }
  const double check_seconds = t_check.seconds();

  if (!trace_path.empty() || want_metrics) {
    trace::recorder::instance().disable();
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "cannot write trace '%s'\n", trace_path.c_str());
        return 1;
      }
      trace::recorder::instance().write_chrome_json(out);
      std::printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
  }
  for (std::size_t i = 0; i < deck.size(); ++i) {
    const double secs = dr.per_rule[i].phases.total();
    std::printf("  %-16s %8.3fs  %zu violations\n", deck[i].name.c_str(), secs,
                dr.per_rule[i].violations.size());
    db.add(deck[i].name, dr.per_rule[i].violations);
  }
  engine::check_report& total = dr.total;
  std::printf("total: %zu violations in %.3fs (%s mode, batch %s)\n", total.violations.size(),
              t_total.seconds(), mode_s.c_str(), cfg.batch ? "on" : "off");
  if (total.deck.groups > 0) {
    std::size_t pair_rules = 0;
    for (const rules::rule& r : deck) {
      if (engine::compile_plan(r).cls == engine::plan_class::pair) ++pair_rules;
    }
    std::printf(
        "batching: %zu pair rules in %zu groups (%.1f rules/group, %zu sharing a pass), "
        "shared phases %.3fs, est. time saved %.3fs\n",
        pair_rules, total.deck.groups,
        static_cast<double>(pair_rules) / static_cast<double>(total.deck.groups),
        total.deck.batched_rules, total.deck.shared_seconds, total.deck.saved_seconds);
  }

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write report '%s'\n", report_path.c_str());
      return 1;
    }
    db.write_text(out);
    std::printf("report written to %s\n", report_path.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write json '%s'\n", json_path.c_str());
      return 1;
    }
    db.write_json(out);
    std::printf("json written to %s\n", json_path.c_str());
  }
  if (!markers_path.empty()) {
    gdsii::write(render::violation_markers(total.violations, lib.name()), markers_path);
    std::printf("violation markers written to %s\n", markers_path.c_str());
  }
  if (want_metrics) {
    std::ostringstream ms;
    trace::recorder::instance().write_metrics(ms);
    std::fputs(ms.str().c_str(), stdout);
  }

  // --bench-json: emit the check as a one-sample odrc-bench report so a CLI
  // invocation plugs into the same bench_compare gate as the bench/ suites.
  const std::string bench_json_path = opt_value(argc, argv, "bench-json", "");
  if (!bench_json_path.empty()) {
    bench::suite_report br;
    br.suite = "cli_check";
    br.mode = "cli";
    br.scale = 1.0;
    bench::case_result c;
    c.name = "check/" + std::string(mode_s) + "/batch-" + (cfg.batch ? "on" : "off");
    c.repetitions = 1;
    c.warmup = 0;
    c.wall_s = {check_seconds};
    c.counters["violations"] = static_cast<double>(total.violations.size());
    c.counters["rules"] = static_cast<double>(deck.size());
    c.counters["polygons"] = static_cast<double>(lib.expanded_polygon_count());
    c.counters["edge_pairs_tested"] = static_cast<double>(total.check_stats.edge_pairs_tested);
    c.counters["rows"] = static_cast<double>(total.rows);
    c.counters["clips"] = static_cast<double>(total.clips);
    c.finalize();
    br.cases.push_back(std::move(c));
    std::ofstream out(bench_json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write bench json '%s'\n", bench_json_path.c_str());
      return 1;
    }
    bench::write_json(out, br);
    std::printf("bench json written to %s\n", bench_json_path.c_str());
  }
  return total.violations.empty() ? 0 : 1;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string design = argv[2];
  const std::string out = argv[3];
  const double scale = std::atof(opt_value(argc, argv, "scale", "1.0").c_str());
  const int inject = std::atoi(opt_value(argc, argv, "inject", "0").c_str());

  auto spec = workload::spec_for(design, scale > 0 ? scale : 1.0);
  spec.inject = {inject, inject, inject, inject};
  const auto g = workload::generate(spec);
  gdsii::write(g.lib, out);
  std::printf("wrote %s: %zu cells, %llu flat polygons, %zu injected violation sites\n",
              out.c_str(), g.lib.cell_count(),
              static_cast<unsigned long long>(g.lib.expanded_polygon_count()), g.sites.size());
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) return usage();
  const db::library lib = gdsii::read(argv[2]);
  std::printf("library '%s': %zu cells, depth %zu, %llu flat polygons\n", lib.name().c_str(),
              lib.cell_count(), lib.hierarchy_depth(),
              static_cast<unsigned long long>(lib.expanded_polygon_count()));
  for (const db::cell_id top : lib.top_cells()) {
    std::printf("top cell: %s\n", lib.at(top).name().c_str());
  }
  return 0;
}

int cmd_render(int argc, char** argv) {
  if (argc < 4) return usage();
  const db::library lib = gdsii::read(argv[2]);
  const std::string deck_path = opt_value(argc, argv, "deck", "");
  std::vector<checks::violation> violations;
  if (!deck_path.empty()) {
    drc_engine eng;
    eng.add_rules(rules::parse_deck_file(deck_path));
    violations = eng.check(lib).violations;
    std::printf("%zu violations will be marked\n", violations.size());
  }
  render::write_svg(lib, std::string(argv[3]), {}, violations);
  std::printf("rendered %s\n", argv[3]);
  return 0;
}

int cmd_diff(int argc, char** argv) {
  if (argc < 4) return usage();
  std::ifstream a(argv[2]), b(argv[3]);
  if (!a || !b) {
    std::fprintf(stderr, "cannot open report files\n");
    return 2;
  }
  const auto d = report::diff_reports(report::parse_text_report(a),
                                      report::parse_text_report(b));
  std::printf("fixed: %zu, introduced: %zu\n", d.fixed.size(), d.introduced.size());
  for (const report::report_line& rl : d.introduced) {
    std::printf("  NEW %s %s L%d [%d,%d .. %d,%d] measured=%lld\n", rl.rule.c_str(),
                std::string(checks::rule_kind_name(rl.kind)).c_str(), rl.layer1, rl.box.x_min,
                rl.box.y_min, rl.box.x_max, rl.box.y_max,
                static_cast<long long>(rl.measured));
  }
  return d.clean() ? 0 : 1;
}

int cmd_snapshot(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sub = argv[2];
  if (sub == "build") {
    if (argc < 5) return usage();
    const db::library lib = gdsii::read(argv[3]);
    const engine::snapshot_build_stats st = engine::build_snapshot_file(lib, argv[4]);
    std::printf(
        "wrote %s: %llu bytes, %u sections, %llu cells, %llu views, %llu instance sets, "
        "%llu packed sets\n",
        argv[4], static_cast<unsigned long long>(st.file_bytes), st.sections,
        static_cast<unsigned long long>(st.cells), static_cast<unsigned long long>(st.views),
        static_cast<unsigned long long>(st.instance_sets),
        static_cast<unsigned long long>(st.packed_sets));
    return 0;
  }
  if (sub == "info") {
    if (argc < 4) return usage();
    const auto fs = engine::frozen_snapshot::load(argv[3]);
    std::fputs(fs->info_text().c_str(), stdout);
    return 0;
  }
  std::fprintf(stderr, "odrc snapshot: unknown subcommand '%s'\n", sub.c_str());
  return usage();
}

int cmd_serve(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string gds = argv[2];
  const std::string deck_path = argv[3];
  const std::string socket_path = opt_value(argc, argv, "socket", "");
  const std::string listen_ep = opt_value(argc, argv, "listen", "");
  if (socket_path.empty() && listen_ep.empty()) {
    std::fprintf(stderr, "odrc serve: --socket=PATH or --listen=EP is required\n");
    return 2;
  }
  const std::string trace_path = opt_value(argc, argv, "trace", "");
  if (!trace_path.empty()) trace::recorder::instance().enable();

  engine_config cfg;
  cfg.run_mode =
      std::string(opt_value(argc, argv, "mode", "par")) == "seq" ? engine::mode::sequential
                                                                 : engine::mode::parallel;
  if (auto m = simd::parse_mode(opt_value(argc, argv, "simd", "auto").c_str())) cfg.simd = *m;
  serve::session_manager sessions;
  {
    auto deck = rules::parse_deck_file(deck_path);
    const std::string snap_path = opt_value(argc, argv, "snapshot", "");
    if (!snap_path.empty()) {
      // mmap boot (DESIGN.md §9): the .snap replaces the GDSII parse and the
      // snapshot build; the positional layout argument is ignored.
      auto fs = engine::frozen_snapshot::load(snap_path);
      db::library lib = fs->make_library();
      std::printf("booted %s: %llu mapped bytes, %zu cells; %zu rules from %s\n",
                  snap_path.c_str(), static_cast<unsigned long long>(fs->mapped_bytes()),
                  lib.cell_count(), deck.size(), deck_path.c_str());
      sessions.create_frozen(std::move(fs), std::move(lib), std::move(deck), cfg);
    } else {
      db::library lib = gdsii::read(gds);
      std::printf("loaded %s: %zu cells, %llu flat polygons; %zu rules from %s\n", gds.c_str(),
                  lib.cell_count(),
                  static_cast<unsigned long long>(lib.expanded_polygon_count()), deck.size(),
                  deck_path.c_str());
      sessions.create(std::move(lib), std::move(deck), cfg);
    }
  }

  serve::server_config scfg;
  scfg.socket_path = socket_path;
  scfg.endpoint = listen_ep;
  scfg.workers = static_cast<std::size_t>(
      std::max(1, std::atoi(opt_value(argc, argv, "workers", "2").c_str())));
  scfg.engine = cfg;
  serve::server srv(scfg, sessions);
  srv.start();
  std::printf("serving session 1 on %s (%zu workers); send 'shutdown' to stop\n",
              srv.bound_endpoint().c_str(), scfg.workers);
  std::fflush(stdout);
  srv.wait();

  if (!trace_path.empty()) {
    trace::recorder::instance().disable();
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write trace '%s'\n", trace_path.c_str());
      return 1;
    }
    trace::recorder::instance().write_chrome_json(out);
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  const serve::server_stats_snapshot st = srv.stats();
  std::printf("served %zu requests (%zu rejected, %zu protocol errors), p50 %.2fms p95 %.2fms\n",
              st.requests_total, st.requests_rejected, st.protocol_errors, st.p50_ms, st.p95_ms);
  return 0;
}

// Spawn one `odrc serve` worker via /proc/self/exe; returns its pid.
pid_t spawn_worker(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork() failed");
  if (pid == 0) {
    std::vector<char*> argv_c;
    argv_c.reserve(args.size() + 1);
    for (const std::string& a : args) argv_c.push_back(const_cast<char*>(a.c_str()));
    argv_c.push_back(nullptr);
    ::execv("/proc/self/exe", argv_c.data());
    std::perror("execv");
    _exit(127);
  }
  return pid;
}

// SIGTERM + reap every spawned worker; the list is cleared so a later call
// cannot signal a recycled pid.
void kill_workers(std::vector<pid_t>& children) {
  for (const pid_t pid : children) ::kill(pid, SIGTERM);
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  children.clear();
}

// Block until a worker answers ping on `ep` (it has to parse the layout
// first) or the deadline passes.
bool await_worker(const std::string& ep, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      serve::client c;
      c.connect(ep);
      if (serve::client::ok(c.request(serve::msg_type::ping, 0))) return true;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

int cmd_coord(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string gds = argv[2];
  const std::string deck_path = argv[3];
  const std::string socket_path = opt_value(argc, argv, "socket", "");
  std::string listen_ep = opt_value(argc, argv, "listen", "");
  if (listen_ep.empty() && has_flag(argc, argv, "tcp")) listen_ep = "tcp:127.0.0.1:0";
  if (socket_path.empty() && listen_ep.empty()) {
    std::fprintf(stderr, "odrc coord: --socket=PATH or --listen=EP is required\n");
    return 2;
  }
  const std::string snap_path = opt_value(argc, argv, "snapshot", "");
  const std::string mode_s = opt_value(argc, argv, "mode", "par");
  const std::string workers_s = opt_value(argc, argv, "workers", "2");

  std::vector<std::string> worker_eps = opt_values(argc, argv, "worker");
  std::size_t shards = worker_eps.empty()
                           ? static_cast<std::size_t>(
                                 std::max(1, std::atoi(opt_value(argc, argv, "shards", "2").c_str())))
                           : worker_eps.size();

  // Plan the bands over the layout the workers will load.
  const db::library lib = snap_path.empty()
                              ? gdsii::read(gds)
                              : engine::frozen_snapshot::load(snap_path)->make_library();
  std::vector<rect> bands = engine::plan_shards(lib, shards);
  if (bands.size() < shards) {
    std::printf("layout yields %zu independent band(s); using %zu shard(s)\n", bands.size(),
                bands.size());
  }
  if (!worker_eps.empty()) {
    worker_eps.resize(bands.size());  // trimmed workers stay idle
  }

  // Spawn workers unless the fleet was provided (pre-started, maybe remote).
  std::vector<pid_t> children;
  if (worker_eps.empty()) {
    char dir_templ[] = "/tmp/odrc_coord_XXXXXX";
    const char* dir = ::mkdtemp(dir_templ);
    if (dir == nullptr) {
      std::fprintf(stderr, "odrc coord: mkdtemp failed\n");
      return 1;
    }
    for (std::size_t i = 0; i < bands.size(); ++i) {
      const std::string ep = std::string(dir) + "/worker" + std::to_string(i) + ".sock";
      std::vector<std::string> args = {"odrc",           "serve",
                                       gds,              deck_path,
                                       "--socket=" + ep, "--workers=" + workers_s,
                                       "--mode=" + mode_s};
      if (!snap_path.empty()) args.push_back("--snapshot=" + snap_path);
      children.push_back(spawn_worker(args));
      worker_eps.push_back(ep);
    }
  }
  for (const std::string& ep : worker_eps) {
    if (!await_worker(ep, 30000)) {
      std::fprintf(stderr, "odrc coord: worker %s did not come up\n", ep.c_str());
      kill_workers(children);
      return 1;
    }
  }

  serve::coord_config ccfg;
  ccfg.listen.socket_path = socket_path;
  ccfg.listen.endpoint = listen_ep;
  ccfg.listen.workers = std::max<std::size_t>(2, bands.size());
  ccfg.worker_endpoints = worker_eps;
  ccfg.bands = bands;
  try {
    serve::coordinator coord(std::move(ccfg));
    coord.start();
    std::printf("coordinating %zu shard(s) on %s; send 'shutdown' to stop\n", worker_eps.size(),
                coord.bound_endpoint().c_str());
    for (std::size_t i = 0; i < worker_eps.size(); ++i) {
      std::printf("  shard %zu -> %s (band y %d..%d)\n", i, worker_eps[i].c_str(), bands[i].y_min,
                  bands[i].y_max);
    }
    std::fflush(stdout);
    coord.wait();

    // Normal shutdown forwarded `shutdown` to the workers; just reap.
    for (const pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    children.clear();
    const serve::server_stats_snapshot st = coord.stats();
    std::printf("coordinated %zu requests (%zu rejected, %zu protocol errors)\n",
                st.requests_total, st.requests_rejected, st.protocol_errors);
  } catch (const std::exception& e) {
    // Coordinator construction/start failed (worker rejected its shard, bind
    // error, ...): don't orphan the forked workers.
    std::fprintf(stderr, "odrc coord: %s\n", e.what());
    kill_workers(children);
    return 1;
  }
  return 0;
}

int cmd_client(int argc, char** argv) {
  const std::string socket_path = opt_value(argc, argv, "socket", "");
  if (socket_path.empty()) {
    std::fprintf(stderr, "odrc client: --socket=PATH is required\n");
    return 2;
  }
  const auto session =
      static_cast<std::uint32_t>(std::atoi(opt_value(argc, argv, "session", "0").c_str()));

  // First non-flag argument after "client" is the verb; the rest are its args.
  std::vector<std::string> pos;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) pos.emplace_back(argv[i]);
  }
  if (pos.empty()) return usage();
  const std::string& verb = pos[0];

  if (verb == "subscribe") {
    // Long-running: subscribe, then stream pushed delta frames to stdout
    // (one payload per line group) until --count frames arrived, the
    // --timeout per-frame wait expires, or the server goes away.
    std::string window;
    if (pos.size() >= 5) window = pos[1] + " " + pos[2] + " " + pos[3] + " " + pos[4];
    const int count = std::atoi(opt_value(argc, argv, "count", "0").c_str());
    const int timeout_ms = std::atoi(opt_value(argc, argv, "timeout", "-1").c_str());
    serve::client cl;
    cl.connect(socket_path);
    const serve::frame resp = cl.request(serve::msg_type::subscribe, session, window);
    std::printf("%s\n", resp.payload.c_str());
    std::fflush(stdout);
    if (!serve::client::ok(resp)) return 1;
    int seen = 0;
    while (count <= 0 || seen < count) {
      const std::optional<serve::frame> pf = cl.wait_push(timeout_ms);
      if (!pf) break;  // timeout or connection closed
      std::printf("%s\n", pf->payload.c_str());
      std::fflush(stdout);
      ++seen;
    }
    return (count > 0 && seen < count) ? 1 : 0;
  }

  serve::msg_type type;
  std::string payload;
  if (verb == "ping") {
    type = serve::msg_type::ping;
  } else if (verb == "check") {
    type = serve::msg_type::check;
  } else if (verb == "recheck") {
    type = serve::msg_type::recheck;
  } else if (verb == "diff") {
    type = serve::msg_type::diff;
  } else if (verb == "stats") {
    type = serve::msg_type::stats;
  } else if (verb == "close") {
    type = serve::msg_type::close;
  } else if (verb == "shutdown") {
    type = serve::msg_type::shutdown;
  } else if (verb == "open") {
    if (pos.size() < 3) {
      std::fprintf(stderr, "odrc client open: expects <layout.gds> <rules.deck>\n");
      return 2;
    }
    type = serve::msg_type::open;
    payload = pos[1] + " " + pos[2];
  } else if (verb == "check_region") {
    if (pos.size() < 5) {
      std::fprintf(stderr, "odrc client check_region: expects <x1> <y1> <x2> <y2>\n");
      return 2;
    }
    type = serve::msg_type::check_region;
    payload = pos[1] + " " + pos[2] + " " + pos[3] + " " + pos[4];
  } else if (verb == "query") {
    if (pos.size() < 5) {
      std::fprintf(stderr, "odrc client query: expects <x1> <y1> <x2> <y2> [keys]\n");
      return 2;
    }
    type = serve::msg_type::query;
    payload = pos[1] + " " + pos[2] + " " + pos[3] + " " + pos[4];
    if (pos.size() >= 6 && pos[5] == "keys") payload += " keys";
  } else if (verb == "unsubscribe") {
    if (pos.size() < 2) {
      std::fprintf(stderr, "odrc client unsubscribe: expects <sub_id>\n");
      return 2;
    }
    type = serve::msg_type::unsubscribe;
    payload = pos[1];
  } else if (verb == "reload") {
    if (pos.size() < 2) {
      std::fprintf(stderr, "odrc client reload: expects <file.snap>\n");
      return 2;
    }
    type = serve::msg_type::reload;
    payload = pos[1];
  } else if (verb == "edit") {
    if (pos.size() < 2) {
      std::fprintf(stderr, "odrc client edit: expects an edit script file (or '-' for stdin)\n");
      return 2;
    }
    type = serve::msg_type::edit;
    std::ostringstream script;
    if (pos[1] == "-") {
      script << std::cin.rdbuf();
    } else {
      std::ifstream in(pos[1]);
      if (!in) {
        std::fprintf(stderr, "cannot open edit script '%s'\n", pos[1].c_str());
        return 2;
      }
      script << in.rdbuf();
    }
    payload = script.str();
  } else {
    std::fprintf(stderr, "odrc client: unknown verb '%s'\n", verb.c_str());
    return usage();
  }

  serve::client cl;
  cl.connect(socket_path);
  const serve::frame resp = cl.request(type, session, payload);
  std::printf("%s\n", resp.payload.c_str());
  return serve::client::ok(resp) ? 0 : 1;
}

int cmd_deck_template() {
  std::printf(
      "# ASAP7-like BEOL rule deck (distances in nm = dbu)\n"
      "rule SHAPES      rectilinear\n"
      "rule M1.W.1      width       layer=19 min=18\n"
      "rule M2.W.1      width       layer=20 min=18\n"
      "rule M3.W.1      width       layer=30 min=18\n"
      "rule M1.S.1      spacing     layer=19 min=18\n"
      "rule M2.S.1      spacing     layer=20 min=18\n"
      "# conditional (PRL) spacing example — long parallel runs need more room:\n"
      "# rule M2.S.PRL   spacing     layer=20 min=18 prl=500:24\n"
      "rule M3.S.1      spacing     layer=30 min=18\n"
      "rule M1.A.1      area        layer=19 min=1000\n"
      "rule V1.M1.EN.1  enclosure   inner=21 outer=19 min=5\n"
      "rule V2.M2.EN.1  enclosure   inner=25 outer=20 min=5\n"
      "rule V2.M3.EN.1  enclosure   inner=25 outer=30 min=5\n"
      "rule V1.M1.OV    overlap     layer=21 with=19 min_area=64\n");
  return 0;
}

// Build + dispatch report for CI logs: a mis-dispatched SIMD tier (e.g. a
// scalar fallback on a runner that should have AVX2) is visible here.
int cmd_version() {
  std::printf("odrc (OpenDRC reproduction)\n");
  std::printf("%s\n", simd::describe().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string cmd = argv[1];
    if (cmd == "check") return cmd_check(argc, argv);
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
    if (cmd == "render") return cmd_render(argc, argv);
    if (cmd == "diff") return cmd_diff(argc, argv);
    if (cmd == "snapshot") return cmd_snapshot(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "coord") return cmd_coord(argc, argv);
    if (cmd == "client") return cmd_client(argc, argv);
    if (cmd == "deck-template") return cmd_deck_template();
    if (cmd == "version" || cmd == "--version") return cmd_version();
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "odrc: %s\n", e.what());
    return 1;
  }
}
