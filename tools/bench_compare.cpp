// bench_compare — the perf-regression gate over two BENCH_*.json reports.
//
//   bench_compare [flags] <baseline.json> <current.json>
//
// Exit codes: 0 no regression, 1 at least one case regressed, 2 usage or
// I/O error. A case regresses only if its wall-clock median grew by more
// than max(rel_threshold * baseline_median, mad_k * MAD, min_abs_s) — the
// noise-aware verdict implemented in src/infra/bench_harness.cpp — so the
// gate works both locally (tight thresholds) and in CI (shared runners,
// looser thresholds via --threshold).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "infra/bench_harness.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--threshold=0.10] [--mad-k=3.0] [--min-abs=0.0005]\n"
               "                     [--scale-current=K] [--warn-only]\n"
               "                     <baseline.json> <current.json>\n"
               "Exits 0 when no case regressed, 1 on regression, 2 on error.\n"
               "--scale-current=K judges as if current medians were K x recorded\n"
               "(self-test hook: K=2 against identical files must fail).\n"
               "--warn-only reports regressions but always exits 0 (PR mode).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace odrc::bench;

  compare_options opts;
  bool warn_only = false;
  std::vector<std::string> paths;
  auto starts = [](const char* s, const char* p) {
    return std::strncmp(s, p, std::strlen(p)) == 0;
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (starts(a, "--threshold=")) {
      opts.rel_threshold = std::atof(a + 12);
    } else if (starts(a, "--mad-k=")) {
      opts.mad_k = std::atof(a + 8);
    } else if (starts(a, "--min-abs=")) {
      opts.min_abs_s = std::atof(a + 10);
    } else if (starts(a, "--scale-current=")) {
      opts.scale_current = std::atof(a + 16);
    } else if (std::strcmp(a, "--warn-only") == 0) {
      warn_only = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      return usage();
    } else if (a[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag '%s'\n", a);
      return usage();
    } else {
      paths.emplace_back(a);
    }
  }
  if (paths.size() != 2) return usage();

  try {
    const suite_report baseline = read_json_file(paths[0]);
    const suite_report current = read_json_file(paths[1]);
    if (baseline.suite != current.suite) {
      std::fprintf(stderr, "bench_compare: suite mismatch ('%s' vs '%s')\n",
                   baseline.suite.c_str(), current.suite.c_str());
      return 2;
    }
    if (baseline.mode != current.mode || baseline.scale != current.scale) {
      std::fprintf(stderr,
                   "bench_compare: WARNING comparing mode=%s scale=%g against mode=%s "
                   "scale=%g — timings may not be commensurable\n",
                   baseline.mode.c_str(), baseline.scale, current.mode.c_str(),
                   current.scale);
    }
    std::printf("suite %s: baseline %s vs current %s\n", baseline.suite.c_str(),
                paths[0].c_str(), paths[1].c_str());
    const compare_result result = compare_reports(baseline, current, opts);
    write_compare(std::cout, result, opts);
    if (!result.ok() && warn_only) {
      std::printf("warn-only mode: regressions reported but not failing the run\n");
      return 0;
    }
    return result.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
