// Adaptive row-based partition tests (paper Section IV-B / Algorithm 1).
#include "partition/row_partition.hpp"

#include <gtest/gtest.h>

#include <random>

namespace odrc::partition {
namespace {

TEST(Merge1D, EmptyInput) {
  const grouping g = merge_1d({}, merge_strategy::pigeonhole);
  EXPECT_TRUE(g.groups.empty());
  EXPECT_TRUE(g.group_of.empty());
}

TEST(Merge1D, DisjointIntervalsKeepGroups) {
  const std::vector<interval> ivs{{0, 10, 0}, {20, 30, 1}, {40, 50, 2}};
  const grouping g = merge_1d(ivs, merge_strategy::pigeonhole);
  ASSERT_EQ(g.groups.size(), 3u);
  EXPECT_EQ(g.group_of, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(Merge1D, OverlapChainsMerge) {
  const std::vector<interval> ivs{{0, 10, 0}, {5, 15, 1}, {14, 20, 2}, {100, 110, 3}};
  const grouping g = merge_1d(ivs, merge_strategy::pigeonhole);
  ASSERT_EQ(g.groups.size(), 2u);
  EXPECT_EQ(g.groups[0].lo, 0);
  EXPECT_EQ(g.groups[0].hi, 20);
  EXPECT_EQ(g.group_of, (std::vector<std::uint32_t>{0, 0, 0, 1}));
}

TEST(Merge1D, CoordinateCompressionHandlesHugeCoords) {
  // Domain values far apart: the pigeonhole array must be sized by the
  // number of distinct coordinates (paper: N = unique values), not the span.
  const std::vector<interval> ivs{
      {-2000000000, -1999999990, 0}, {1999999990, 2000000000, 1}, {0, 5, 2}};
  const grouping g = merge_1d(ivs, merge_strategy::pigeonhole);
  EXPECT_EQ(g.groups.size(), 3u);
}

class StrategyEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(StrategyEquivalence, PigeonholeEqualsSortStrategy) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<coord_t> lo_d(-5000, 5000);
  std::uniform_int_distribution<coord_t> len_d(0, 600);
  std::vector<interval> ivs;
  for (int i = 0; i < 500; ++i) {
    const coord_t lo = lo_d(rng);
    ivs.push_back({lo, lo + len_d(rng), static_cast<std::uint32_t>(i)});
  }
  const grouping a = merge_1d(ivs, merge_strategy::pigeonhole);
  const grouping b = merge_1d(ivs, merge_strategy::sort);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].lo, b.groups[i].lo);
    EXPECT_EQ(a.groups[i].hi, b.groups[i].hi);
  }
  EXPECT_EQ(a.group_of, b.group_of);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalence, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// 2-D row partition
// ---------------------------------------------------------------------------

TEST(RowPartition, EmptyAndAllEmptyMbrs) {
  EXPECT_TRUE(partition_rows({}, 10).rows.empty());
  const std::vector<rect> empties(3);
  EXPECT_TRUE(partition_rows(empties, 10).rows.empty());
}

TEST(RowPartition, TwoSeparatedRows) {
  // Two bands of cells with a 100 gap; distance 18 keeps them independent.
  const std::vector<rect> mbrs{
      {0, 0, 50, 20}, {60, 0, 100, 20},    // row 0
      {0, 120, 50, 140}, {60, 120, 100, 140},  // row 1
  };
  const partition_result p = partition_rows(mbrs, 18);
  ASSERT_EQ(p.rows.size(), 2u);
  EXPECT_EQ(p.rows[0].member_count(), 2u);
  EXPECT_EQ(p.rows[1].member_count(), 2u);
  // Within each row the two cells separate into clips (x gap 10 > 18? no:
  // gap is 10 < 18 after inflation 9 -> inflated gap -8 -> merged).
  EXPECT_EQ(p.rows[0].clips.size(), 1u);
}

TEST(RowPartition, ClipsSeparateAlongX) {
  const std::vector<rect> mbrs{
      {0, 0, 20, 20}, {100, 0, 120, 20},  // far apart in x
  };
  const partition_result p = partition_rows(mbrs, 18);
  ASSERT_EQ(p.rows.size(), 1u);
  EXPECT_EQ(p.rows[0].clips.size(), 2u);
  EXPECT_EQ(p.clip_count(), 2u);
}

TEST(RowPartition, InflationMergesCloseRows) {
  // Gap of 10 < distance 18: the bands must merge (a violation could span
  // the gap).
  const std::vector<rect> mbrs{{0, 0, 50, 20}, {0, 30, 50, 50}};
  const partition_result p = partition_rows(mbrs, 18);
  EXPECT_EQ(p.rows.size(), 1u);
  // Gap of 19 > 18: independent.
  const std::vector<rect> apart{{0, 0, 50, 20}, {0, 40, 50, 60}};
  EXPECT_EQ(partition_rows(apart, 18).rows.size(), 2u);
}

TEST(RowPartition, EmptyMbrsAreSkippedButIndicesPreserved) {
  std::vector<rect> mbrs{{0, 0, 10, 10}, rect{}, {0, 100, 10, 110}};
  const partition_result p = partition_rows(mbrs, 5);
  ASSERT_EQ(p.rows.size(), 2u);
  EXPECT_EQ(p.rows[0].clips[0].members, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(p.rows[1].clips[0].members, (std::vector<std::uint32_t>{2}));
}

// The soundness property the engine relies on: objects in different rows (or
// different clips) are separated by strictly more than the rule distance.
class PartitionSoundness : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSoundness, SeparationExceedsDistance) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<coord_t> pos(0, 4000);
  std::uniform_int_distribution<coord_t> size(1, 200);
  const coord_t dist = 18;

  std::vector<rect> mbrs;
  for (int i = 0; i < 300; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    mbrs.push_back({x, y, x + size(rng), y + size(rng)});
  }
  const partition_result p = partition_rows(mbrs, dist);

  // Membership: every object appears exactly once.
  std::vector<int> seen(mbrs.size(), 0);
  for (const row& r : p.rows) {
    for (const clip& c : r.clips) {
      for (std::uint32_t m : c.members) ++seen[m];
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);

  // Cross-row separation.
  for (std::size_t r1 = 0; r1 < p.rows.size(); ++r1) {
    for (std::size_t r2 = r1 + 1; r2 < p.rows.size(); ++r2) {
      for (const clip& c1 : p.rows[r1].clips) {
        for (std::uint32_t a : c1.members) {
          for (const clip& c2 : p.rows[r2].clips) {
            for (std::uint32_t b : c2.members) {
              const coord_t gap = std::max(mbrs[b].y_min - mbrs[a].y_max,
                                           mbrs[a].y_min - mbrs[b].y_max);
              EXPECT_GT(gap, dist) << "rows " << r1 << "," << r2;
            }
          }
        }
      }
    }
  }
  // Cross-clip (same row) separation along x.
  for (const row& r : p.rows) {
    for (std::size_t c1 = 0; c1 < r.clips.size(); ++c1) {
      for (std::size_t c2 = c1 + 1; c2 < r.clips.size(); ++c2) {
        for (std::uint32_t a : r.clips[c1].members) {
          for (std::uint32_t b : r.clips[c2].members) {
            const coord_t gap = std::max(mbrs[b].x_min - mbrs[a].x_max,
                                         mbrs[a].x_min - mbrs[b].x_max);
            EXPECT_GT(gap, dist);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSoundness, ::testing::Range(1, 6));

TEST(RowPartition, SortStrategyProducesSameResult) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<coord_t> pos(0, 2000);
  std::vector<rect> mbrs;
  for (int i = 0; i < 200; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    mbrs.push_back({x, y, x + 50, y + 30});
  }
  const partition_result a = partition_rows(mbrs, 18, merge_strategy::pigeonhole);
  const partition_result b = partition_rows(mbrs, 18, merge_strategy::sort);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_EQ(a.rows[i].clips.size(), b.rows[i].clips.size());
    for (std::size_t j = 0; j < a.rows[i].clips.size(); ++j) {
      EXPECT_EQ(a.rows[i].clips[j].members, b.rows[i].clips[j].members);
    }
  }
}

}  // namespace
}  // namespace odrc::partition
