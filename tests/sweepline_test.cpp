// CPU sweepline tests (paper Section IV-D, Fig. 3) and the generic Listing 2
// functor.
#include "sweep/sweepline.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace odrc::sweep {
namespace {

using pair_set = std::set<std::pair<std::uint32_t, std::uint32_t>>;

pair_set run_sweep(std::span<const rect> rects, coord_t inflate = 0, sweep_stats* st = nullptr) {
  pair_set out;
  if (inflate == 0) {
    overlap_pairs(rects, [&](std::uint32_t i, std::uint32_t j) { out.insert({i, j}); }, st);
  } else {
    overlap_pairs_inflated(rects, inflate,
                           [&](std::uint32_t i, std::uint32_t j) { out.insert({i, j}); }, st);
  }
  return out;
}

pair_set brute_force(std::span<const rect> rects, coord_t inflate = 0) {
  pair_set out;
  for (std::uint32_t i = 0; i < rects.size(); ++i) {
    for (std::uint32_t j = i + 1; j < rects.size(); ++j) {
      if (rects[i].inflated(inflate).overlaps(rects[j].inflated(inflate))) out.insert({i, j});
    }
  }
  return out;
}

TEST(Sweepline, EmptyAndSingle) {
  EXPECT_TRUE(run_sweep({}).empty());
  const std::vector<rect> one{{0, 0, 10, 10}};
  EXPECT_TRUE(run_sweep(one).empty());
}

TEST(Sweepline, BasicOverlap) {
  const std::vector<rect> rs{{0, 0, 10, 10}, {5, 5, 15, 15}, {20, 20, 30, 30}};
  EXPECT_EQ(run_sweep(rs), (pair_set{{0, 1}}));
}

TEST(Sweepline, TouchingCountsAsOverlap) {
  // Closed-rectangle semantics: shared edges and shared corners report.
  const std::vector<rect> rs{{0, 0, 10, 10}, {10, 0, 20, 10}, {10, 10, 20, 20}};
  EXPECT_EQ(run_sweep(rs), (pair_set{{0, 1}, {0, 2}, {1, 2}}));
}

TEST(Sweepline, EmptyRectsNeverPair) {
  const std::vector<rect> rs{{0, 0, 10, 10}, rect{}, {5, 5, 15, 15}};
  EXPECT_EQ(run_sweep(rs), (pair_set{{0, 2}}));
}

TEST(Sweepline, DuplicateRects) {
  const std::vector<rect> rs{{0, 0, 10, 10}, {0, 0, 10, 10}, {0, 0, 10, 10}};
  EXPECT_EQ(run_sweep(rs), (pair_set{{0, 1}, {0, 2}, {1, 2}}));
}

TEST(Sweepline, InflationExpandsCandidates) {
  const std::vector<rect> rs{{0, 0, 10, 10}, {15, 0, 25, 10}};  // gap 5
  EXPECT_TRUE(run_sweep(rs).empty());
  EXPECT_EQ(run_sweep(rs, 3), (pair_set{{0, 1}}));  // inflated by 3 each: gap closed
}

TEST(Sweepline, StatsPopulated) {
  const std::vector<rect> rs{{0, 0, 10, 10}, {5, 5, 15, 15}};
  sweep_stats st;
  run_sweep(rs, 0, &st);
  EXPECT_EQ(st.events, 4u);
  EXPECT_EQ(st.pairs_reported, 1u);
  EXPECT_EQ(st.max_live_intervals, 2u);
}

class SweepRandom : public ::testing::TestWithParam<int> {};

TEST_P(SweepRandom, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<coord_t> pos(-1000, 1000);
  std::uniform_int_distribution<coord_t> size(0, 150);
  std::vector<rect> rs;
  for (int i = 0; i < 300; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    rs.push_back({x, y, x + size(rng), y + size(rng)});
  }
  EXPECT_EQ(run_sweep(rs), brute_force(rs));
  EXPECT_EQ(run_sweep(rs, 20), brute_force(rs, 20));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepRandom, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Listing 2: the executor-dispatched sweepline functor
// ---------------------------------------------------------------------------

TEST(SweeplineFunctor, SequencedExecutorRunsInline) {
  std::vector<int> events{1, 2, 3, 4};
  int sum = 0;
  sweepline(execution::seq, events.begin(), events.end(), &sum,
            [](int& acc, int e) { acc += e; });
  EXPECT_EQ(sum, 10);
}

TEST(SweeplineFunctor, DeviceExecutorMatchesSequenced) {
  std::vector<int> events(100);
  std::iota(events.begin(), events.end(), 1);

  int cpu_sum = 0;
  sweepline(execution::seq, events.begin(), events.end(), &cpu_sum,
            [](int& acc, int e) { acc += e; });

  device::stream s(device::context::instance());
  // Status lives in device memory; the op is appended to the stream.
  auto* dev_sum = static_cast<int*>(device::context::instance().malloc(sizeof(int)));
  *dev_sum = 0;
  execution::device_policy exec{&s};
  sweepline(exec, events.begin(), events.end(), dev_sum, [](int& acc, int e) { acc += e; });
  s.synchronize();
  EXPECT_EQ(*dev_sum, cpu_sum);
  device::context::instance().free(dev_sum);
}

}  // namespace
}  // namespace odrc::sweep
