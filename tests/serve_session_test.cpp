// Session-layer tests for odrc::serve: the edit/dirty-rect machinery and the
// central correctness property of the subsystem — an incremental recheck()
// produces exactly the violation key set of a fresh full check, including
// edits that straddle partition-row boundaries and touch array instances.
#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <sstream>
#include <thread>

#include "db/layout.hpp"
#include "engine/rule.hpp"
#include "serve/edits.hpp"

namespace odrc::serve {
namespace {

constexpr db::layer_t M1 = 19;
constexpr db::layer_t M2 = 20;
constexpr db::layer_t V1 = 21;

// Hierarchical fixture: `unit` is instantiated twice as plain refs and once
// as a 4x3 array, so a master edit dirties many disjoint top regions; `blk`
// has one reference (removing it changes the top-cell set).
db::library make_lib() {
  db::library lib("serve_test");
  const db::cell_id unit = lib.add_cell("unit");
  lib.at(unit).add_rect(M1, {0, 0, 200, 30});
  lib.at(unit).add_rect(M1, {0, 60, 200, 90});
  lib.at(unit).add_rect(V1, {20, 5, 40, 25});
  const db::cell_id blk = lib.add_cell("blk");
  lib.at(blk).add_rect(M1, {0, 0, 30, 400});
  lib.at(blk).add_rect(M2, {0, 0, 300, 30});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(M1, {0, 1000, 2000, 1030});
  // Baseline violations so the first full check has a nonempty key set:
  // a pair 20 < 25 apart (spacing), a 15x15 speck (width + area), and a via
  // 2 dbu from its wire edges (enclosure 2 < 4).
  lib.at(top).add_rect(M1, {8000, 0, 8200, 30});
  lib.at(top).add_rect(M1, {8000, 50, 8200, 80});
  lib.at(top).add_rect(M1, {7000, 7000, 7015, 7015});
  lib.at(top).add_rect(V1, {9000, 1002, 9020, 1028});
  lib.at(top).add_rect(M2, {500, 0, 530, 2000});
  lib.at(top).add_ref({unit, transform{{0, 0}, 0, false, 1}});
  lib.at(top).add_ref({unit, transform{{3000, 0}, 0, false, 1}});
  lib.at(top).add_ref({blk, transform{{5000, 500}, 0, false, 1}});
  db::cell_array a;
  a.target = unit;
  a.trans.offset = {0, 4000};
  a.cols = 4;
  a.rows = 3;
  a.col_step = {400, 0};
  a.row_step = {0, 300};
  lib.at(top).add_array(a);
  return lib;
}

std::vector<rules::rule> make_deck() {
  return {
      rules::layer(M1).width().greater_than(18).named("M1.W"),
      rules::layer(M1).spacing().greater_than(25).named("M1.S"),
      rules::layer(M2).spacing().greater_than(25).named("M2.S"),
      rules::layer(M1).area().greater_than(800).named("M1.A"),
      rules::layer(V1).enclosed_by(M1).greater_than(4).named("V1.EN"),
  };
}

std::vector<edit_op> ops(const std::string& script) { return parse_edit_script(script); }

TEST(ServeSession, FullCheckPopulatesStore) {
  session s(make_lib(), make_deck());
  const auto rows = s.check_full();
  // Summary rows cover the rules with hits: spacing, width, area, enclosure.
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_FALSE(s.keys().empty());
  EXPECT_EQ(s.stats().checks, 1u);
}

TEST(ServeSession, EditScriptParseErrorsNameTheLine) {
  EXPECT_THROW((void)parse_edit_script("add_poly top 19 0 0"), std::runtime_error);
  EXPECT_THROW((void)parse_edit_script("frobnicate x"), std::runtime_error);
  EXPECT_TRUE(parse_edit_script("# just a comment\n\n").empty());
}

TEST(ServeSession, RecheckFindsIntroducedViolation) {
  session s(make_lib(), make_deck());
  s.check_full();
  // A 10x10 M1 speck in empty space: too narrow and below min area.
  s.apply(ops("add_poly top 19 9000 9000 9010 9010"));
  const recheck_result r = s.recheck();
  EXPECT_FALSE(r.full);
  EXPECT_TRUE(r.diff.fixed.empty());
  EXPECT_FALSE(r.diff.introduced.empty());
  // Undo: remove the polygon we just added (last M1 polygon of top).
  const recheck_result r2 = [&] {
    s.apply(ops("remove_poly top 19 4"));
    return s.recheck();
  }();
  EXPECT_FALSE(r2.full);
  EXPECT_TRUE(r2.diff.introduced.empty());
  EXPECT_EQ(r2.diff.fixed.size(), r.diff.introduced.size());
}

TEST(ServeSession, FirstRecheckFallsBackToFull) {
  session s(make_lib(), make_deck());
  const recheck_result r = s.recheck();
  EXPECT_TRUE(r.full);
}

TEST(ServeSession, TopsChangeForcesFullRecheck) {
  session s(make_lib(), make_deck());
  s.check_full();
  // Removing blk's only reference promotes blk to a top cell.
  const edit_result er = s.apply(ops("remove_inst top 2"));
  EXPECT_TRUE(er.tops_changed);
  const recheck_result r = s.recheck();
  EXPECT_TRUE(r.full);

  // Equivalence still holds through the fallback.
  session fresh(make_lib(), make_deck());
  fresh.apply(ops("remove_inst top 2"));
  fresh.check_full();
  EXPECT_EQ(s.keys(), fresh.keys());
}

TEST(ServeSession, FailedScriptPoisonsUntilFullCheck) {
  session s(make_lib(), make_deck());
  s.check_full();
  EXPECT_THROW((void)s.apply(ops("add_poly nosuchcell 19 0 0 10 10")), std::runtime_error);
  EXPECT_TRUE(s.recheck().full);
  s.apply(ops("add_poly top 19 9000 9000 9010 9010"));
  EXPECT_FALSE(s.recheck().full);
}

TEST(ServeSession, ArrayMasterEditDirtiesEveryInstance) {
  db::library lib = make_lib();
  engine::layout_snapshot snap(lib);
  // Shrinking a unit wire must dirty a region covering the whole 4x3 array
  // (plus both plain refs) — the corner-join covering.
  const edit_result er =
      apply_edits(lib, snap, ops("move_poly unit 19 0 0 7000"));
  ASSERT_FALSE(er.dirty.empty());
  rect all;
  for (const rect& d : er.dirty) all = all.join(d);
  // Array spans x in [0, 400*3+200], y in [4000, 4000+300*2+90].
  EXPECT_LE(all.x_min, 0);
  EXPECT_GE(all.x_max, 1400);
  EXPECT_GE(all.y_max, 4690);
}

TEST(ServeSession, PlacementsOfCoversArrayInstances) {
  const db::library lib = make_lib();
  const auto top = lib.find("top");
  const auto unit = lib.find("unit");
  ASSERT_TRUE(top && unit);
  // 2 plain refs + 12 array instances.
  EXPECT_EQ(placements_of(lib, *top, *unit).size(), 14u);
}

// The tentpole acceptance property, randomized: an incremental session and a
// full-check session fed the identical edit stream must agree on the exact
// violation key set after every round. The op mix deliberately includes tall
// polygons and large vertical moves (straddling partition-row boundaries)
// and edits to the array master `unit`.
TEST(ServeIncremental, RandomizedEquivalence) {
  session inc(make_lib(), make_deck());
  session full(make_lib(), make_deck());
  inc.check_full();
  full.check_full();
  ASSERT_EQ(inc.keys(), full.keys());

  std::mt19937 rng(0x5EED);
  // Mirror of layer-local polygon counts so remove/move indices stay valid.
  std::map<std::pair<std::string, int>, int> npolys{
      {{"unit", M1}, 2}, {{"unit", V1}, 1}, {{"blk", M1}, 1},
      {{"blk", M2}, 1},  {{"top", M1}, 4},  {{"top", M2}, 1},
  };
  const std::vector<std::pair<std::string, int>> slots = {
      {"unit", M1}, {"blk", M1}, {"blk", M2}, {"top", M1}, {"top", M2}};

  std::size_t incremental_rounds = 0;
  for (int round = 0; round < 8; ++round) {
    std::ostringstream script;
    for (int k = 0; k < 3; ++k) {
      const auto& [cell, layer] = slots[rng() % slots.size()];
      const int x = static_cast<int>(rng() % 8000);
      const int y = static_cast<int>(rng() % 8000);
      switch (rng() % 4) {
        case 0: {  // add: sometimes a tall sliver spanning many rows
          const int w = 10 + static_cast<int>(rng() % 30);
          const int h = (rng() % 3 == 0) ? 2500 : 10 + static_cast<int>(rng() % 30);
          script << "add_poly " << cell << ' ' << layer << ' ' << x << ' ' << y << ' '
                 << (x + w) << ' ' << (y + h) << '\n';
          ++npolys[{cell, layer}];
          break;
        }
        case 1: {  // move: large dy crosses partition-row boundaries
          const int n = npolys[{cell, layer}];
          if (n == 0) break;
          const int dy = static_cast<int>(rng() % 3000) - 1500;
          script << "move_poly " << cell << ' ' << layer << ' ' << (rng() % n) << " 17 "
                 << dy << '\n';
          break;
        }
        case 2: {  // remove (keep at least one polygon on the layer)
          auto& n = npolys[{cell, layer}];
          if (n <= 1) break;
          script << "remove_poly " << cell << ' ' << layer << ' ' << (rng() % n) << '\n';
          --n;
          break;
        }
        case 3: {  // nudge a unit placement (refs 0/1 of top target unit)
          script << "move_inst top " << (rng() % 2) << " " << (rng() % 100) << ' '
                 << (rng() % 100) << '\n';
          break;
        }
      }
    }
    const auto batch = ops(script.str());
    if (batch.empty()) continue;
    inc.apply(batch);
    full.apply(batch);
    const recheck_result r = inc.recheck();
    full.check_full();
    if (!r.full) ++incremental_rounds;
    ASSERT_EQ(inc.keys(), full.keys()) << "round " << round << " script:\n" << script.str();
  }
  // The point of the test is the incremental path; require it actually ran.
  EXPECT_GE(incremental_rounds, 5u);
}

TEST(ServeIncremental, DiffAccountsForEveryKeyChange) {
  session s(make_lib(), make_deck());
  s.check_full();
  const auto before = s.keys();
  s.apply(ops("add_poly top 19 9000 9000 9010 9010\n"
              "move_poly unit 19 1 0 7\n"));
  const recheck_result r = s.recheck();
  const auto after = s.keys();
  // |after| = |before| - fixed + introduced, and unchanged = |before| - fixed.
  EXPECT_EQ(after.size(), before.size() - r.diff.fixed.size() + r.diff.introduced.size());
  EXPECT_EQ(r.diff.unchanged.size(), before.size() - r.diff.fixed.size());
}

// Two sessions driven by parallel edit/recheck loops (the TSan CI target):
// sessions serialize internally but run concurrently against each other,
// sharing thread_pool::global() through the engine. Each thread's edit
// stream is serial per session, so the end state is deterministic and must
// match a fresh session fed the same stream.
TEST(ServeConcurrent, TwoSessionsParallelEditRecheckLoops) {
  session_manager mgr;
  const std::uint32_t ids[2] = {mgr.create(make_lib(), make_deck()),
                                mgr.create(make_lib(), make_deck())};
  auto script_for = [](int which, int i) {
    std::ostringstream s;
    const int x = 9000 + which * 2000 + i * 50;
    s << "add_poly top 19 " << x << " 9000 " << (x + 10) << " 9010\n";
    return s.str();
  };
  std::vector<std::string> streams[2];
  std::vector<std::thread> threads;
  for (int which = 0; which < 2; ++which) {
    for (int i = 0; i < 6; ++i) streams[which].push_back(script_for(which, i));
    threads.emplace_back([&, which] {
      auto s = mgr.get(ids[which]);
      s->check_full();
      for (const std::string& sc : streams[which]) {
        s->apply(parse_edit_script(sc));
        (void)s->recheck();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int which = 0; which < 2; ++which) {
    session fresh(make_lib(), make_deck());
    for (const std::string& sc : streams[which]) fresh.apply(parse_edit_script(sc));
    fresh.check_full();
    EXPECT_EQ(mgr.get(ids[which])->keys(), fresh.keys()) << "session " << which;
  }
}

TEST(ServeSession, ManagerLifecycle) {
  session_manager mgr;
  const std::uint32_t id = mgr.create(make_lib(), make_deck());
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(mgr.count(), 1u);
  ASSERT_NE(mgr.get(id), nullptr);
  EXPECT_EQ(mgr.get(99), nullptr);
  EXPECT_TRUE(mgr.close(id));
  EXPECT_FALSE(mgr.close(id));
  EXPECT_EQ(mgr.count(), 0u);
}

}  // namespace
}  // namespace odrc::serve
