// Engine tests for the derived-layer boolean rules (overlap_area and
// notcut_area): the inter-layer constraint examples from the paper's intro.
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "workload/workload.hpp"

namespace odrc::engine {
namespace {

using workload::layers;
using workload::tech;

TEST(DerivedRules, DslBuildsRules) {
  const rules::rule ov = rules::layer(25).overlap_with(20).area_at_least(64).named("V2.M2.OV");
  EXPECT_EQ(ov.kind, checks::rule_kind::overlap_area);
  EXPECT_EQ(ov.layer1, 25);
  EXPECT_EQ(ov.layer2, 20);
  EXPECT_EQ(ov.min_area, 64);
  EXPECT_EQ(ov.name, "V2.M2.OV");

  const rules::rule nc = rules::layer(19).not_cut_by(21).area_at_least(100);
  EXPECT_EQ(nc.kind, checks::rule_kind::notcut_area);
}

TEST(DerivedRules, OverlapAreaFlagsPartialCover) {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  // Via 1 fully covered (overlap 64), via 2 half-hanging off the metal
  // (overlap 32).
  lib.at(top).add_rect(1, {0, 0, 100, 20});       // metal
  lib.at(top).add_rect(2, {10, 6, 18, 14});       // via, inside
  lib.at(top).add_rect(2, {96, 6, 104, 14});      // via, half off
  drc_engine e;
  const auto r = e.check(lib, rules::layer(2).overlap_with(1).area_at_least(64));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, checks::rule_kind::overlap_area);
  EXPECT_EQ(r.violations[0].measured, 32);
  EXPECT_EQ(r.violations[0].e1.mbr().join(r.violations[0].e2.mbr()), (rect{96, 6, 100, 14}));
}

TEST(DerivedRules, OverlapSplitAcrossMetalsIsOneRegionWhenTouching) {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  // Two abutting metal rects under one via: the overlap slabs touch and
  // must count as ONE region of full via area.
  lib.at(top).add_rect(1, {0, 0, 14, 20});
  lib.at(top).add_rect(1, {14, 0, 30, 20});
  lib.at(top).add_rect(2, {10, 6, 18, 14});
  drc_engine e;
  const auto r = e.check(lib, rules::layer(2).overlap_with(1).area_at_least(64));
  EXPECT_TRUE(r.violations.empty());
}

TEST(DerivedRules, NotCutFlagsSlivers) {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  // Metal bar cut by a via-sized window near its end: the leftover stub of
  // 6x20 = 120 dbu^2 is a sliver under a 200 threshold.
  lib.at(top).add_rect(1, {0, 0, 100, 20});
  lib.at(top).add_rect(3, {80, 0, 94, 20});  // full-height cut
  drc_engine e;
  const auto r = e.check(lib, rules::layer(1).not_cut_by(3).area_at_least(200));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, checks::rule_kind::notcut_area);
  EXPECT_EQ(r.violations[0].measured, 6 * 20);
  // The big left part (80x20) is fine.
}

TEST(DerivedRules, NotCutCleanWhenNoCut) {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(1, {0, 0, 100, 20});
  drc_engine e;
  EXPECT_TRUE(e.check(lib, rules::layer(1).not_cut_by(3).area_at_least(200)).violations.empty());
}

TEST(DerivedRules, WorksThroughHierarchy) {
  // Vias defined in a master, metal in the top: derived layers are computed
  // on the flattened geometry.
  db::library lib;
  const db::cell_id via_cell = lib.add_cell("via");
  lib.at(via_cell).add_rect(2, {0, 0, 8, 8});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(1, {0, 0, 200, 20});
  for (int i = 0; i < 4; ++i) {
    lib.at(top).add_ref({via_cell, transform{{static_cast<coord_t>(10 + i * 40), 6}, 0, false, 1}});
  }
  // One via placed sticking out above the metal.
  lib.at(top).add_ref({via_cell, transform{{180, 16}, 0, false, 1}});
  drc_engine e;
  const auto r = e.check(lib, rules::layer(2).overlap_with(1).area_at_least(64));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].measured, 8 * 4);
}

TEST(DerivedRules, WorkloadViasFullyCovered) {
  // Generated fabric: every V2 cut must overlap M2 and M3 by its full 64
  // dbu^2 footprint.
  const auto g = workload::generate(workload::spec_for("uart", 1.0));
  drc_engine e;
  const area_t via_area = static_cast<area_t>(tech::via_size) * tech::via_size;
  EXPECT_TRUE(e.check(g.lib, rules::layer(layers::V2).overlap_with(layers::M2)
                                 .area_at_least(via_area))
                  .violations.empty());
  EXPECT_TRUE(e.check(g.lib, rules::layer(layers::V2).overlap_with(layers::M3)
                                 .area_at_least(via_area))
                  .violations.empty());
  EXPECT_TRUE(e.check(g.lib, rules::layer(layers::V1).overlap_with(layers::M1)
                                 .area_at_least(via_area))
                  .violations.empty());
  // An impossible threshold flags every via region.
  const auto r = e.check(g.lib, rules::layer(layers::V1).overlap_with(layers::M1)
                                    .area_at_least(via_area + 1));
  EXPECT_FALSE(r.violations.empty());
}

}  // namespace
}  // namespace odrc::engine
