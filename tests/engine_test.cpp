// Engine tests: rule DSL, check drivers, hierarchy memoization, partition
// ablation invariance, and the parallel/sequential equivalence.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include "workload/workload.hpp"

namespace odrc::engine {
namespace {

using workload::layers;
using workload::tech;

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

// A tiny hand-built library: one master instantiated 4 times (translation,
// rotation, mirror) + a narrow bar and a close pair in the top cell.
struct fixture {
  db::library lib;
  db::cell_id master, top;

  fixture() {
    master = lib.add_cell("m");
    lib.at(master).add_rect(1, {0, 0, 18, 100});
    lib.at(master).add_rect(1, {36, 0, 54, 100});
    top = lib.add_cell("top");
    lib.at(top).add_ref({master, transform{{0, 0}, 0, false, 1}});
    lib.at(top).add_ref({master, transform{{200, 0}, 0, false, 1}});
    lib.at(top).add_ref({master, transform{{500, 0}, 1, false, 1}});
    lib.at(top).add_ref({master, transform{{800, 200}, 0, true, 1}});
    // Direct top geometry: a narrow bar (width violation) and a close pair.
    lib.at(top).add_rect(1, {1000, 0, 1010, 100});
    lib.at(top).add_rect(1, {1100, 0, 1118, 100});
    lib.at(top).add_rect(1, {1128, 0, 1146, 100});  // gap 10 to previous
  }
};

TEST(RuleDsl, BuildsRules) {
  const rules::rule w = rules::layer(19).width().greater_than(18);
  EXPECT_EQ(w.kind, checks::rule_kind::width);
  EXPECT_EQ(w.layer1, 19);
  EXPECT_EQ(w.distance, 18);

  const rules::rule s = rules::layer(20).spacing().greater_than(21).named("M2.S.1");
  EXPECT_EQ(s.kind, checks::rule_kind::spacing);
  EXPECT_EQ(s.name, "M2.S.1");

  const rules::rule e = rules::layer(21).enclosed_by(19).greater_than(5);
  EXPECT_EQ(e.kind, checks::rule_kind::enclosure);
  EXPECT_EQ(e.layer1, 21);
  EXPECT_EQ(e.layer2, 19);

  const rules::rule a = rules::layer(19).area().greater_than(1000);
  EXPECT_EQ(a.kind, checks::rule_kind::area);
  EXPECT_EQ(a.min_area, 1000);

  const rules::rule r = rules::polygons().is_rectilinear();
  EXPECT_EQ(r.kind, checks::rule_kind::rectilinear);
  EXPECT_EQ(r.layer1, rules::any_layer);

  const rules::rule c = rules::layer(20).polygons().ensures(
      [](const db::polygon_elem& p) { return !p.name.empty(); });
  EXPECT_EQ(c.kind, checks::rule_kind::custom);
  EXPECT_TRUE(c.predicate);
}

TEST(Engine, WidthFindsDirectTopViolation) {
  fixture f;
  drc_engine e;
  const check_report r = e.run_width(f.lib, 1, 18);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].e1.mbr().join(r.violations[0].e2.mbr()),
            (rect{1000, 0, 1010, 100}));
}

TEST(Engine, IntraMemoizationCountsMasters) {
  fixture f;
  drc_engine e;
  const check_report r = e.run_width(f.lib, 1, 18);
  // master checked once, reused 3x; top's own polygons are one more master.
  EXPECT_EQ(r.prune.intra_computed, 2u);
  EXPECT_EQ(r.prune.intra_reused, 3u);
}

TEST(Engine, MemoizationAblationGivesSameViolations) {
  fixture f;
  drc_engine memo({.enable_memoization = true});
  drc_engine nomemo({.enable_memoization = false});
  EXPECT_EQ(norm(memo.run_spacing(f.lib, 1, 18).violations),
            norm(nomemo.run_spacing(f.lib, 1, 18).violations));
  EXPECT_EQ(norm(memo.run_width(f.lib, 1, 18).violations),
            norm(nomemo.run_width(f.lib, 1, 18).violations));
}

TEST(Engine, PartitionAblationGivesSameViolations) {
  fixture f;
  drc_engine part({.enable_partition = true});
  drc_engine nopart({.enable_partition = false});
  EXPECT_EQ(norm(part.run_spacing(f.lib, 1, 18).violations),
            norm(nopart.run_spacing(f.lib, 1, 18).violations));
  const check_report with = part.run_spacing(f.lib, 1, 18);
  const check_report without = nopart.run_spacing(f.lib, 1, 18);
  EXPECT_GT(with.clips, without.clips);
}

TEST(Engine, SpacingFindsInjectedGap) {
  fixture f;
  drc_engine e;
  const check_report r = e.run_spacing(f.lib, 1, 18);
  ASSERT_FALSE(r.violations.empty());
  // All violations cluster at the injected close pair around x=1118..1128.
  for (const checks::violation& v : r.violations) {
    const rect m = v.e1.mbr().join(v.e2.mbr());
    EXPECT_GE(m.x_min, 1100);
    EXPECT_LE(m.x_max, 1146);
  }
}

TEST(Engine, PairMemoizationReusesRelativePlacements) {
  // A row of identical masters at uniform pitch: every adjacent pair has the
  // same relative placement, so the pair memo computes one entry and reuses
  // it for all other adjacencies. Pitch 36 leaves exactly the minimum 18 nm
  // gap — compliant, but close enough that candidate pairs are generated.
  db::library lib;
  const db::cell_id m = lib.add_cell("m");
  lib.at(m).add_rect(1, {0, 0, 18, 100});
  const db::cell_id top = lib.add_cell("top");
  for (int i = 0; i < 10; ++i) {
    lib.at(top).add_ref({m, transform{{static_cast<coord_t>(i * 36), 0}, 0, false, 1}});
  }
  drc_engine e;
  const check_report r = e.run_spacing(lib, 1, 18);
  EXPECT_TRUE(r.violations.empty());  // gap exactly 18 everywhere
  EXPECT_EQ(r.prune.pairs_computed, 1u);  // one relative placement
  EXPECT_EQ(r.prune.pairs_reused, 8u);    // reused for the other 8 adjacencies
}

TEST(Engine, RuleDeckRunsAllRules) {
  auto spec = workload::spec_for("uart", 0.5);
  spec.inject = {1, 1, 1, 1};
  const auto g = workload::generate(spec);

  drc_engine e;
  e.add_rules({
      rules::polygons().is_rectilinear(),
      rules::layer(layers::M1).width().greater_than(tech::wire_width),
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space),
      rules::layer(layers::M1).area().greater_than(tech::min_area),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(tech::via_enclosure),
  });
  EXPECT_EQ(e.deck().size(), 5u);
  const check_report all = e.check(g.lib);
  EXPECT_FALSE(all.violations.empty());

  // The merged report equals the union of individual runs.
  std::vector<checks::violation> merged;
  for (const rules::rule& r : e.deck()) {
    auto one = e.check(g.lib, r);
    merged.insert(merged.end(), one.violations.begin(), one.violations.end());
  }
  EXPECT_EQ(norm(all.violations), norm(merged));
}

TEST(Engine, CustomPredicateRule) {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_polygon({20, 0, polygon::from_rect({0, 0, 50, 50}), "named"});
  lib.at(top).add_polygon({20, 0, polygon::from_rect({100, 0, 150, 50}), ""});
  drc_engine e;
  const check_report r = e.check(
      lib, rules::layer(20).polygons().ensures(
               [](const db::polygon_elem& p) { return !p.name.empty(); }));
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, checks::rule_kind::custom);
  EXPECT_EQ(r.violations[0].e1.mbr().join(r.violations[0].e2.mbr()), (rect{100, 0, 150, 50}));
}

TEST(Engine, RectilinearRuleAcrossAllLayers) {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_polygon({1, 0, polygon{{{0, 0}, {5, 5}, {10, 0}, {5, -5}}}, ""});
  lib.at(top).add_rect(2, {0, 0, 10, 10});
  drc_engine e;
  const check_report r = e.check(lib, rules::polygons().is_rectilinear());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].layer1, 1);
}

TEST(Engine, ParallelModeMatchesSequential) {
  auto spec = workload::spec_for("uart", 0.6);
  spec.inject = {2, 2, 2, 1};
  const auto g = workload::generate(spec);

  drc_engine seq({.run_mode = mode::sequential});
  drc_engine par({.run_mode = mode::parallel});

  for (const db::layer_t m : {layers::M1, layers::M2, layers::M3}) {
    EXPECT_EQ(norm(seq.run_spacing(g.lib, m, tech::wire_space).violations),
              norm(par.run_spacing(g.lib, m, tech::wire_space).violations))
        << "layer " << m;
    EXPECT_EQ(norm(seq.run_width(g.lib, m, tech::wire_width).violations),
              norm(par.run_width(g.lib, m, tech::wire_width).violations));
  }
  EXPECT_EQ(
      norm(seq.run_enclosure(g.lib, layers::V1, layers::M1, tech::via_enclosure).violations),
      norm(par.run_enclosure(g.lib, layers::V1, layers::M1, tech::via_enclosure).violations));
  EXPECT_EQ(
      norm(seq.run_enclosure(g.lib, layers::V2, layers::M2, tech::via_enclosure).violations),
      norm(par.run_enclosure(g.lib, layers::V2, layers::M2, tech::via_enclosure).violations));
}

TEST(Engine, ParallelModeUsesDevice) {
  auto spec = workload::spec_for("uart", 0.5);
  const auto g = workload::generate(spec);
  drc_engine par({.run_mode = mode::parallel});
  const check_report r = par.run_spacing(g.lib, layers::M1, tech::wire_space);
  EXPECT_GT(r.device_stats.edges_uploaded, 0u);
  EXPECT_GT(r.device_stats.sweep_launches + r.device_stats.brute_launches, 0u);
}

TEST(Engine, Fig4PhasesRecorded) {
  auto spec = workload::spec_for("uart", 1.0);
  const auto g = workload::generate(spec);
  drc_engine e;
  const check_report r = e.run_spacing(g.lib, layers::M1, tech::wire_space);
  EXPECT_GT(r.phases.phases().count("partition"), 0u);
  EXPECT_GT(r.phases.phases().count("sweepline"), 0u);
  EXPECT_GT(r.phases.phases().count("edge_check"), 0u);
  EXPECT_GT(r.rows, 1u);
  EXPECT_GT(r.clips, r.rows);
}

TEST(Engine, ExecutorChoiceAblation) {
  auto spec = workload::spec_for("uart", 0.5);
  const auto g = workload::generate(spec);
  drc_engine brute({.run_mode = mode::parallel, .executor = sweep::executor_choice::brute});
  drc_engine sweep_only({.run_mode = mode::parallel, .executor = sweep::executor_choice::sweep});
  EXPECT_EQ(norm(brute.run_spacing(g.lib, layers::M2, tech::wire_space).violations),
            norm(sweep_only.run_spacing(g.lib, layers::M2, tech::wire_space).violations));
}

TEST(Engine, ConcurrentDeckMatchesSerial) {
  auto spec = workload::spec_for("uart", 0.5);
  spec.inject = {1, 1, 1, 1};
  const auto g = workload::generate(spec);
  drc_engine e;
  e.add_rules({
      rules::layer(layers::M1).width().greater_than(tech::wire_width),
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space),
      rules::layer(layers::M1).area().greater_than(tech::min_area),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(tech::via_enclosure),
  });
  auto serial = e.check(g.lib).violations;
  auto parallel = e.check_concurrent(g.lib).violations;
  checks::normalize_all(serial);
  checks::normalize_all(parallel);
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(Engine, ConcurrentDeckInParallelMode) {
  auto spec = workload::spec_for("uart", 0.4);
  spec.inject = {1, 1, 0, 0};
  const auto g = workload::generate(spec);
  drc_engine e({.run_mode = mode::parallel});
  e.add_rules({
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space),
  });
  auto serial = e.check(g.lib).violations;
  auto conc = e.check_concurrent(g.lib).violations;
  checks::normalize_all(serial);
  checks::normalize_all(conc);
  EXPECT_EQ(serial, conc);
}

TEST(Engine, EmptyLayerProducesNothing) {
  fixture f;
  drc_engine e;
  EXPECT_TRUE(e.run_spacing(f.lib, 42, 18).violations.empty());
  EXPECT_TRUE(e.run_width(f.lib, 42, 18).violations.empty());
  EXPECT_TRUE(e.run_enclosure(f.lib, 42, 43, 5).violations.empty());
}

}  // namespace
}  // namespace odrc::engine
