// Streaming violation subscriptions (DESIGN.md §12): subscription_manager
// unit tests with gated fake sinks (queue bound, drop-oldest + gap marker,
// rate limits, teardown), end-to-end delta push over a real socket
// (delta == diff, windowed clipping, randomized delta-concatenation
// reconstructing the full-check state), protocol fuzz for unknown verbs and
// zero-length payloads, and coordinator fan-in dedup of seam straddlers.
// Suite names start with "Subscribe" so the TSan CI job picks them up.
#include "serve/subscribe.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "db/layout.hpp"
#include "engine/rule.hpp"
#include "engine/shard.hpp"
#include "serve/client.hpp"
#include "serve/coord.hpp"
#include "serve/server.hpp"

namespace odrc::serve {
namespace {

constexpr db::layer_t M1 = 19;

// Baseline library with violations both near the origin and far from it, so
// windowed queries/subscriptions see a nonempty proper subset of the store.
db::library make_lib() {
  db::library lib("subscribe_test");
  const db::cell_id unit = lib.add_cell("unit");
  lib.at(unit).add_rect(M1, {0, 0, 200, 30});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(M1, {0, 500, 2000, 530});
  lib.at(top).add_rect(M1, {300, 0, 310, 10});     // 10x10: width + area, near origin
  lib.at(top).add_rect(M1, {0, 1000, 400, 1010});  // width 10 < 18, far away
  lib.at(top).add_rect(M1, {0, 1100, 200, 1130});
  lib.at(top).add_rect(M1, {0, 1140, 200, 1170});  // spacing 10 < 25, far away
  lib.at(top).add_ref({unit, transform{{0, 0}, 0, false, 1}});
  lib.at(top).add_ref({unit, transform{{600, 0}, 0, false, 1}});
  return lib;
}

std::vector<rules::rule> make_deck() {
  return {
      rules::layer(M1).width().greater_than(18).named("M1.W"),
      rules::layer(M1).spacing().greater_than(25).named("M1.S"),
      rules::layer(M1).area().greater_than(800).named("M1.A"),
  };
}

long field(const std::string& line, const std::string& word) {
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok == word) {
      long v = -1;
      in >> v;
      return v;
    }
  }
  return -1;
}

std::vector<std::string> tagged(const std::string& payload, const std::string& tag) {
  std::vector<std::string> out;
  const std::string prefix = tag + ' ';
  std::istringstream is(payload);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(prefix, 0) == 0) out.push_back(line.substr(prefix.size()));
  }
  return out;
}

/// Spin until `pred` holds or ~5s elapse.
template <class Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// --- subscription_manager unit tests ----------------------------------------

/// push_sink whose push() blocks until open()ed — deterministically wedges
/// the flusher so queue-bound behavior can be observed; records every frame
/// it let through.
struct gate_sink : push_sink {
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  bool release = false;
  bool fail = false;
  std::vector<frame> got;

  bool push(const frame& f) override {
    std::unique_lock lk(mu);
    ++entered;
    cv.notify_all();
    cv.wait(lk, [&] { return release; });
    if (fail) return false;
    got.push_back(f);
    cv.notify_all();
    return true;
  }

  void wait_entered(int n) {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return entered >= n; });
  }
  void open() {
    std::lock_guard lk(mu);
    release = true;
    cv.notify_all();
  }
  std::size_t delivered() {
    std::lock_guard lk(mu);
    return got.size();
  }
  std::vector<frame> frames() {
    std::lock_guard lk(mu);
    return got;
  }
};

report::key_diff one_new(const std::string& key) {
  report::key_diff d;
  d.introduced.push_back(key);
  return d;
}

TEST(Subscribe, PublishNeverBlocksDropsOldestAndMarksGap) {
  subscribe_config cfg;
  cfg.queue_limit = 4;
  subscription_manager mgr(cfg);
  auto sink = std::make_shared<gate_sink>();
  const std::uint64_t id = mgr.subscribe(1, std::nullopt, sink, 0xabc);
  ASSERT_GT(id, 0u);

  mgr.publish(1, one_new("k0"));
  sink->wait_entered(1);  // seq 0 popped and wedged inside push()

  // A wedged subscriber must not block the publisher (the recheck path).
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= 10; ++i) mgr.publish(1, one_new("k" + std::to_string(i)));
  const auto publish_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  EXPECT_LT(publish_ms, 1000) << "publish blocked on a wedged sink";

  // Queue bound 4: seqs 1..10 squeezed into {7,8,9,10}, six dropped.
  subscription_stats st = mgr.stats();
  EXPECT_EQ(st.published, 11u);
  EXPECT_EQ(st.dropped, 6u);
  EXPECT_EQ(st.queue_depth, 4u);
  EXPECT_EQ(st.active, 1u);

  sink->open();
  ASSERT_TRUE(eventually([&] { return sink->delivered() == 5; }));
  const std::vector<frame> got = sink->frames();
  std::vector<std::uint64_t> seqs;
  std::vector<bool> gaps;
  for (const frame& f : got) {
    const std::optional<delta_frame> d = parse_delta(f);
    ASSERT_TRUE(d.has_value());
    seqs.push_back(d->seq);
    gaps.push_back(d->gap);
    EXPECT_EQ(f.header.session, 1u);
    EXPECT_EQ(f.header.seq, static_cast<std::uint16_t>(d->seq));
  }
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 7, 8, 9, 10}));
  // The seq hole is flagged on the first frame delivered after the drops and
  // the marker clears once it went out.
  EXPECT_EQ(gaps, (std::vector<bool>{false, true, false, false, false}));

  st = mgr.stats();
  EXPECT_EQ(st.delivered, 5u);
  EXPECT_EQ(st.queue_depth, 0u);
  mgr.stop();
}

TEST(Subscribe, WindowClipsKeysButKeepsUnparsable) {
  subscription_manager mgr;
  auto sink = std::make_shared<gate_sink>();
  sink->open();  // deliver immediately
  mgr.subscribe(1, rect{0, 0, 100, 100}, sink, 1);

  report::key_diff d;
  d.introduced = {
      "R|spacing|19|19|0,0,10,0|0,20,10,20|4",          // extent {0,0,10,20}: inside
      "R|spacing|19|19|500,500,510,500|500,520,510,520|4",  // far outside
      "garbage-key",                                     // unparsable: kept
  };
  d.fixed = {"R|spacing|19|19|900,900,910,900|900,920,910,920|4"};  // outside
  mgr.publish(1, d);

  ASSERT_TRUE(eventually([&] { return sink->delivered() == 1; }));
  const std::optional<delta_frame> got = parse_delta(sink->frames()[0]);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->introduced,
            (std::vector<std::string>{"R|spacing|19|19|0,0,10,0|0,20,10,20|4", "garbage-key"}));
  EXPECT_TRUE(got->fixed.empty());
  mgr.stop();
}

TEST(Subscribe, RateLimitsPerSessionAndTotal) {
  subscribe_config cfg;
  cfg.max_per_session = 2;
  cfg.max_total = 3;
  subscription_manager mgr(cfg);
  auto sink = std::make_shared<gate_sink>();
  mgr.subscribe(1, std::nullopt, sink, 1);
  mgr.subscribe(1, std::nullopt, sink, 1);
  EXPECT_THROW(mgr.subscribe(1, std::nullopt, sink, 1), std::runtime_error);
  mgr.subscribe(2, std::nullopt, sink, 1);
  EXPECT_THROW(mgr.subscribe(2, std::nullopt, sink, 1), std::runtime_error);  // total cap
  EXPECT_EQ(mgr.stats().active, 3u);
  mgr.stop();
}

TEST(Subscribe, DropOwnerAndUnsubscribe) {
  subscription_manager mgr;
  auto sink = std::make_shared<gate_sink>();
  const std::uint64_t a = mgr.subscribe(1, std::nullopt, sink, 111);
  mgr.subscribe(1, std::nullopt, sink, 111);
  mgr.subscribe(2, std::nullopt, sink, 222);
  EXPECT_EQ(mgr.drop_owner(111), 2u);
  EXPECT_EQ(mgr.stats().active, 1u);
  EXPECT_FALSE(mgr.unsubscribe(a)) << "already dropped with its owner";
  EXPECT_EQ(mgr.drop_owner(999), 0u);
  mgr.stop();
}

TEST(Subscribe, FailingSinkTearsDownAllOwnerSubscriptions) {
  subscription_manager mgr;
  auto sink = std::make_shared<gate_sink>();
  sink->fail = true;
  sink->open();
  mgr.subscribe(1, std::nullopt, sink, 7);
  mgr.subscribe(1, std::nullopt, sink, 7);
  mgr.publish(1, one_new("k"));
  ASSERT_TRUE(eventually([&] { return mgr.stats().torn_down == 2; }));
  EXPECT_EQ(mgr.stats().active, 0u);
  mgr.stop();
}

// --- end-to-end over a real socket ------------------------------------------

struct SubscribeServe : ::testing::Test {
  session_manager sessions;
  std::unique_ptr<server> srv;
  std::string path;

  void SetUp() override {
    path = "/tmp/odrc_sub_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter_.fetch_add(1)) + ".sock";
    sessions.create(make_lib(), make_deck());
    server_config cfg;
    cfg.socket_path = path;
    cfg.workers = 2;
    srv = std::make_unique<server>(cfg, sessions);
    srv->start();
  }

  void TearDown() override {
    srv->stop();
    srv->wait();
  }

  static inline std::atomic<int> counter_{0};
};

TEST_F(SubscribeServe, DeltaAfterEditRecheckEqualsDiffQuery) {
  client c;
  c.connect(path);
  const frame sub = c.request(msg_type::subscribe, 0);
  ASSERT_TRUE(client::ok(sub)) << sub.payload;
  EXPECT_GT(field(client::status_line(sub), "subscribed"), 0);

  // First check: the delta reports the entire violation set as new, so a
  // subscriber attached from t=0 needs no out-of-band baseline.
  const frame chk = c.request(msg_type::check, 0, "keys");
  ASSERT_TRUE(client::ok(chk));
  const std::vector<std::string> all_keys = tagged(chk.payload, "v");
  std::optional<frame> push = c.wait_push(10000);
  ASSERT_TRUE(push.has_value());
  std::optional<delta_frame> d0 = parse_delta(*push);
  ASSERT_TRUE(d0.has_value());
  EXPECT_EQ(d0->seq, 0u);
  EXPECT_FALSE(d0->gap);
  std::vector<std::string> introduced = d0->introduced;
  std::sort(introduced.begin(), introduced.end());
  EXPECT_EQ(introduced, all_keys);

  // Edit + recheck: the pushed delta is exactly the diff verb's answer.
  ASSERT_TRUE(client::ok(c.request(msg_type::edit, 0, "add_poly top 19 5000 5000 5010 5010\n")));
  const frame rc = c.request(msg_type::recheck, 0);
  ASSERT_TRUE(client::ok(rc)) << rc.payload;
  const frame dif = c.request(msg_type::diff, 0);
  ASSERT_TRUE(client::ok(dif));

  push = c.wait_push(10000);
  ASSERT_TRUE(push.has_value());
  const std::optional<delta_frame> d1 = parse_delta(*push);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->seq, 1u);
  EXPECT_EQ(d1->fixed, tagged(dif.payload, "fixed"));
  EXPECT_EQ(d1->introduced, tagged(dif.payload, "new"));
  EXPECT_GT(d1->introduced.size(), 0u);
}

TEST_F(SubscribeServe, WindowedSubscriptionClipsToWindow) {
  client c;
  c.connect(path);
  // Window far from everything the edit below touches.
  ASSERT_TRUE(client::ok(c.request(msg_type::subscribe, 0, "0 0 10 10")));
  ASSERT_TRUE(client::ok(c.request(msg_type::check, 0)));

  // The check's delta still arrives (heartbeat semantics) but carries only
  // keys clipped to the window.
  std::optional<frame> push = c.wait_push(10000);
  ASSERT_TRUE(push.has_value());
  std::optional<delta_frame> d = parse_delta(*push);
  ASSERT_TRUE(d.has_value());
  for (const std::string& k : d->introduced) {
    const std::optional<rect> ext = report::key_extent(k);
    ASSERT_TRUE(ext.has_value()) << k;
    EXPECT_TRUE(ext->overlaps(rect{0, 0, 10, 10})) << k;
  }

  ASSERT_TRUE(client::ok(c.request(msg_type::edit, 0, "add_poly top 19 5000 5000 5010 5010\n")));
  ASSERT_TRUE(client::ok(c.request(msg_type::recheck, 0)));
  push = c.wait_push(10000);
  ASSERT_TRUE(push.has_value());
  d = parse_delta(*push);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->seq, 1u);
  EXPECT_TRUE(d->introduced.empty()) << "edit at (5000,5000) leaked into window (0,0,10,10)";
  EXPECT_TRUE(d->fixed.empty());
}

// Randomized acceptance property: a subscriber that applies every delta in
// order reconstructs exactly the violation set a fresh full check reports.
TEST_F(SubscribeServe, RandomizedDeltaConcatenationReconstructsState) {
  std::mt19937 rng(777);
  client c;
  c.connect(path);
  ASSERT_TRUE(client::ok(c.request(msg_type::subscribe, 0)));

  std::set<std::string> view;
  std::uint64_t expect_seq = 0;
  const auto apply_next_delta = [&] {
    const std::optional<frame> push = c.wait_push(10000);
    ASSERT_TRUE(push.has_value());
    const std::optional<delta_frame> d = parse_delta(*push);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->seq, expect_seq++);
    EXPECT_FALSE(d->gap);
    for (const std::string& k : d->fixed) EXPECT_EQ(view.erase(k), 1u) << k;
    for (const std::string& k : d->introduced) EXPECT_TRUE(view.insert(k).second) << k;
  };

  ASSERT_TRUE(client::ok(c.request(msg_type::check, 0)));
  apply_next_delta();

  // Random adds (width+area violators) and moves of previously added polys.
  // Poly 0 on layer M1 in `top` is the seed rect; adds append from index 1.
  int added = 0;
  for (int round = 0; round < 8; ++round) {
    std::ostringstream script;
    if (added > 0 && round % 3 == 2) {
      const int idx = 1 + static_cast<int>(rng() % static_cast<unsigned>(added));
      script << "move_poly top 19 " << idx << " 0 " << (20 + static_cast<int>(rng() % 100))
             << "\n";
    } else {
      const int x = 3000 + 500 * added;
      const int y = 3000 + static_cast<int>(rng() % 400);
      script << "add_poly top 19 " << x << ' ' << y << ' ' << (x + 10) << ' ' << (y + 10)
             << "\n";
      ++added;
    }
    ASSERT_TRUE(client::ok(c.request(msg_type::edit, 0, script.str())));
    const frame rc = c.request(msg_type::recheck, 0);
    ASSERT_TRUE(client::ok(rc)) << rc.payload;
    apply_next_delta();
  }

  // Fresh full check: its key set must equal the reconstructed view (and the
  // check's own delta must be empty — nothing changed).
  const frame chk = c.request(msg_type::check, 0, "keys");
  ASSERT_TRUE(client::ok(chk));
  const std::vector<std::string> expected = tagged(chk.payload, "v");
  EXPECT_EQ(std::vector<std::string>(view.begin(), view.end()), expected);
  apply_next_delta();  // the check's (empty) delta
  EXPECT_EQ(std::vector<std::string>(view.begin(), view.end()), expected);
}

TEST_F(SubscribeServe, UnsubscribeStopsDeltas) {
  client c;
  c.connect(path);
  const frame sub = c.request(msg_type::subscribe, 0);
  ASSERT_TRUE(client::ok(sub));
  const long id = field(client::status_line(sub), "subscribed");
  ASSERT_GT(id, 0);
  const frame un = c.request(msg_type::unsubscribe, 0, std::to_string(id));
  ASSERT_TRUE(client::ok(un)) << un.payload;
  EXPECT_FALSE(client::ok(c.request(msg_type::unsubscribe, 0, std::to_string(id))))
      << "double unsubscribe must fail";

  ASSERT_TRUE(client::ok(c.request(msg_type::check, 0)));
  EXPECT_FALSE(c.wait_push(300).has_value());

  const frame st = c.request(msg_type::stats, 0);
  EXPECT_EQ(field(st.payload, "subs_active"), 0);
}

TEST_F(SubscribeServe, DisconnectMidStreamTearsDownSubscription) {
  {
    client doomed;
    doomed.connect(path);
    ASSERT_TRUE(client::ok(doomed.request(msg_type::subscribe, 0)));
    client c;
    c.connect(path);
    ASSERT_TRUE(client::ok(c.request(msg_type::check, 0)));
    // The subscriber vanishes without unsubscribe, possibly with deltas still
    // queued for it.
    doomed.close();
  }
  client c;
  c.connect(path);
  // The reader-EOF teardown reaps the orphaned subscription; the server keeps
  // answering and rechecks are unaffected.
  ASSERT_TRUE(eventually([&] {
    const frame st = c.request(msg_type::stats, 0);
    return field(st.payload, "subs_active") == 0;
  }));
  ASSERT_TRUE(client::ok(c.request(msg_type::edit, 0, "add_poly top 19 5000 5000 5010 5010\n")));
  const frame rc = c.request(msg_type::recheck, 0);
  ASSERT_TRUE(client::ok(rc)) << rc.payload;
}

TEST_F(SubscribeServe, RateLimitOverProtocol) {
  client c;
  c.connect(path);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client::ok(c.request(msg_type::subscribe, 0))) << i;
  }
  const frame ninth = c.request(msg_type::subscribe, 0);
  EXPECT_FALSE(client::ok(ninth));
  EXPECT_NE(ninth.payload.find("limit"), std::string::npos) << ninth.payload;
}

TEST_F(SubscribeServe, QueryMatchesKeyExtentFilter) {
  client c;
  c.connect(path);
  const frame chk = c.request(msg_type::check, 0, "keys");
  ASSERT_TRUE(client::ok(chk));
  const std::vector<std::string> all_keys = tagged(chk.payload, "v");
  ASSERT_FALSE(all_keys.empty());

  // Whole-plane query returns everything the check stored.
  const frame whole = c.request(msg_type::query, 0, "-100000 -100000 100000 100000 keys");
  ASSERT_TRUE(client::ok(whole)) << whole.payload;
  EXPECT_EQ(tagged(whole.payload, "v"), all_keys);

  // Windowed query equals clipping the key set by each key's embedded extent
  // (the index answers by marker box, which key_extent reconstructs).
  const rect w{0, 0, 700, 600};
  std::vector<std::string> expected;
  for (const std::string& k : all_keys) {
    const std::optional<rect> ext = report::key_extent(k);
    ASSERT_TRUE(ext.has_value()) << k;
    if (w.overlaps(*ext)) expected.push_back(k);
  }
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(expected.size(), all_keys.size());
  const frame win = c.request(msg_type::query, 0, "0 0 700 600 keys");
  ASSERT_TRUE(client::ok(win)) << win.payload;
  EXPECT_EQ(tagged(win.payload, "v"), expected);
  EXPECT_EQ(field(client::status_line(win), "total"), static_cast<long>(expected.size()));

  // Malformed window errors without hurting the connection.
  EXPECT_FALSE(client::ok(c.request(msg_type::query, 0, "10 10 0 0")));
  EXPECT_TRUE(client::ok(c.request(msg_type::ping, 0)));
}

// --- protocol fuzz: unknown verbs, zero-length payloads ----------------------

TEST_F(SubscribeServe, UnknownVerbErrorNamesTheByte) {
  client c;
  c.connect(path);
  for (const std::uint8_t t : {std::uint8_t{0}, std::uint8_t{18}, std::uint8_t{42},
                               std::uint8_t{0x7f}}) {
    const frame resp = c.request(static_cast<msg_type>(t), 0);
    EXPECT_FALSE(client::ok(resp));
    const std::string want = "unknown(" + std::to_string(t) + ")";
    EXPECT_NE(resp.payload.find(want), std::string::npos)
        << "type " << int(t) << " -> " << resp.payload;
  }
  // `delta` is in-enum but server-initiated only: rejected by verb name.
  const frame resp = c.request(msg_type::delta, 0);
  EXPECT_FALSE(client::ok(resp));
  EXPECT_NE(resp.payload.find("delta"), std::string::npos) << resp.payload;
  EXPECT_TRUE(client::ok(c.request(msg_type::ping, 0)));
}

TEST_F(SubscribeServe, ZeroLengthPayloadOnEveryVerbAnswersAndSurvives) {
  client c;
  c.connect(path);
  for (std::uint8_t t = 1; t <= 17; ++t) {
    if (t == static_cast<std::uint8_t>(msg_type::shutdown)) continue;  // would stop the server
    const frame resp = c.request(static_cast<msg_type>(t), 0);
    // Every verb must produce a well-formed status response — ok or a clean
    // error — and never wedge or kill the connection. (`close` legitimately
    // drops session 1, so later session verbs answer "error unknown session".)
    EXPECT_FALSE(resp.payload.empty()) << "type " << int(t);
    EXPECT_TRUE(resp.payload.rfind("ok", 0) == 0 || resp.payload.rfind("error", 0) == 0)
        << "type " << int(t) << " -> " << resp.payload;
  }
  EXPECT_TRUE(client::ok(c.request(msg_type::ping, 0)));
}

// --- coordinator fan-in -------------------------------------------------------

std::vector<rect> manual_bands() {
  using engine::shard_clamp_max;
  using engine::shard_clamp_min;
  return {{shard_clamp_min, shard_clamp_min, shard_clamp_max, 500},
          {shard_clamp_min, 501, shard_clamp_max, shard_clamp_max}};
}

// Seam straddler at y=500 like cluster_test: both workers report it; the
// coordinator must push it exactly once.
db::library make_cluster_lib() {
  db::library lib("subscribe_cluster");
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(M1, {0, 0, 400, 10});
  lib.at(top).add_rect(M1, {100, 460, 300, 498});
  lib.at(top).add_rect(M1, {100, 503, 300, 540});  // spacing 5 < 25, across the seam
  lib.at(top).add_rect(M1, {0, 800, 400, 815});
  return lib;
}

struct SubscribeCluster : ::testing::Test {
  std::vector<std::unique_ptr<session_manager>> wsessions;
  std::vector<std::unique_ptr<server>> workers;
  std::vector<std::string> wpaths;
  std::unique_ptr<coordinator> coord;
  std::string cpath;

  void SetUp() override {
    const std::string stem = "/tmp/odrc_subcl_" + std::to_string(::getpid()) + "_" +
                             std::to_string(counter_.fetch_add(1));
    const std::vector<rect> bands = manual_bands();
    for (std::size_t i = 0; i < bands.size(); ++i) {
      wpaths.push_back(stem + "_w" + std::to_string(i) + ".sock");
      wsessions.push_back(std::make_unique<session_manager>());
      wsessions.back()->create(make_cluster_lib(), make_deck());
      server_config wc;
      wc.socket_path = wpaths.back();
      wc.workers = 2;
      workers.push_back(std::make_unique<server>(wc, *wsessions.back()));
      workers.back()->start();
    }
    cpath = stem + "_coord.sock";
    coord_config cc;
    cc.listen.socket_path = cpath;
    cc.listen.workers = 2;
    cc.worker_endpoints = wpaths;
    cc.bands = bands;
    coord = std::make_unique<coordinator>(std::move(cc));
    coord->start();
  }

  void TearDown() override {
    if (coord) {
      coord->stop();
      coord->wait();
    }
    for (auto& w : workers) {
      w->stop();
      w->wait();
    }
  }

  static inline std::atomic<int> counter_{0};
};

TEST_F(SubscribeCluster, CoordinatorDeltaDedupsSeamStraddlers) {
  session single(make_cluster_lib(), make_deck());
  single.check_full();
  const std::vector<std::string> expected = single.keys();
  ASSERT_FALSE(expected.empty());

  client c;
  c.connect(cpath);
  ASSERT_TRUE(client::ok(c.request(msg_type::subscribe, 0)));
  ASSERT_TRUE(client::ok(c.request(msg_type::check, 0)));

  // The check's delta carries the reconciled key set: every key exactly once
  // even though both workers reported the straddler.
  std::optional<frame> push = c.wait_push(10000);
  ASSERT_TRUE(push.has_value());
  std::optional<delta_frame> d = parse_delta(*push);
  ASSERT_TRUE(d.has_value());
  std::vector<std::string> introduced = d->introduced;
  std::sort(introduced.begin(), introduced.end());
  EXPECT_EQ(introduced, expected);
  EXPECT_TRUE(std::adjacent_find(introduced.begin(), introduced.end()) == introduced.end());

  // Both workers really did store a common (seam) key.
  const std::vector<std::string> k0 = wsessions[0]->get(1)->keys();
  const std::vector<std::string> k1 = wsessions[1]->get(1)->keys();
  std::vector<std::string> both;
  std::set_intersection(k0.begin(), k0.end(), k1.begin(), k1.end(), std::back_inserter(both));
  ASSERT_FALSE(both.empty()) << "no seam straddler exercised";

  // Fix the straddler: the reconciled recheck delta reports it fixed ONCE,
  // matching a single-process session's diff.
  const std::string script = "move_poly top 19 2 0 100\n";
  ASSERT_TRUE(client::ok(c.request(msg_type::edit, 0, script)));
  const auto ops = parse_edit_script(script);
  (void)single.apply(ops);
  const recheck_result rr = single.recheck();

  const frame rc = c.request(msg_type::recheck, 0);
  ASSERT_TRUE(client::ok(rc)) << rc.payload;
  push = c.wait_push(10000);
  ASSERT_TRUE(push.has_value());
  d = parse_delta(*push);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->seq, 1u);
  EXPECT_EQ(d->fixed, rr.diff.fixed);
  EXPECT_EQ(d->introduced, rr.diff.introduced);
  EXPECT_GE(d->fixed.size(), 1u);

  // The coordinator's query verb fans in over ALL bands and dedups too.
  const frame q = c.request(msg_type::query, 0, "-100000 -100000 100000 100000 keys");
  ASSERT_TRUE(client::ok(q)) << q.payload;
  EXPECT_EQ(tagged(q.payload, "v"), single.keys());
}

}  // namespace
}  // namespace odrc::serve
