// Incremental spatial violation index: randomized equivalence against a
// naive reference across epoch rebuilds, and violation_db::in_window vs the
// linear-scan reference under churn. Suite names start with "VioIndex" so
// the TSan CI job picks them up alongside the Serve suites.
#include "report/violation_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>
#include <vector>

#include "report/violation_db.hpp"

namespace odrc::report {
namespace {

checks::violation at(coord_t x, coord_t y, checks::rule_kind kind = checks::rule_kind::spacing) {
  return {kind, 19, 19, edge{{x, y}, {static_cast<coord_t>(x + 10), y}},
          edge{{x, static_cast<coord_t>(y + 10)},
               {static_cast<coord_t>(x + 10), static_cast<coord_t>(y + 10)}},
          100};
}

std::vector<std::uint64_t> naive_query(const std::unordered_map<std::uint64_t, rect>& boxes,
                                       const rect& w) {
  std::vector<std::uint64_t> out;
  for (const auto& [id, b] : boxes) {
    if (w.overlaps(b)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> index_query(const violation_index& idx, const rect& w) {
  std::vector<std::uint64_t> out;
  idx.query(w, [&](std::uint64_t id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(VioIndex, RandomizedMatchesNaiveAcrossRebuilds) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<coord_t> pos(-2000, 2000);
  std::uniform_int_distribution<coord_t> len(1, 300);
  std::uniform_int_distribution<int> op(0, 9);

  violation_index idx;  // default thresholds: rebuilds must actually trigger
  std::unordered_map<std::uint64_t, rect> ref;
  std::vector<std::uint64_t> live;
  std::uint64_t next_id = 1;

  const auto random_rect = [&] {
    const coord_t x = pos(rng), y = pos(rng);
    return rect{x, y, static_cast<coord_t>(x + len(rng)), static_cast<coord_t>(y + len(rng))};
  };

  for (int step = 0; step < 4000; ++step) {
    const int o = op(rng);
    if (o < 5 || live.empty()) {  // insert
      const std::uint64_t id = next_id++;
      const rect b = random_rect();
      idx.insert(id, b);
      ref[id] = b;
      live.push_back(id);
    } else if (o < 7) {  // replace a live id (re-insert semantics)
      const std::uint64_t id = live[rng() % live.size()];
      const rect b = random_rect();
      idx.insert(id, b);
      ref[id] = b;
    } else if (o < 9) {  // erase
      const std::size_t k = rng() % live.size();
      const std::uint64_t id = live[k];
      live[k] = live.back();
      live.pop_back();
      EXPECT_TRUE(idx.erase(id));
      ref.erase(id);
      EXPECT_FALSE(idx.erase(id)) << "double erase must report absent";
    } else {  // query
      const rect w = random_rect();
      EXPECT_EQ(index_query(idx, w), naive_query(ref, w)) << "step " << step;
    }
  }
  EXPECT_EQ(idx.size(), ref.size());
  // The churn above must have driven epoch rebuilds, or the test exercised
  // only the linear overlay and proved nothing about the packed tree path.
  EXPECT_GT(idx.stats().rebuilds, 0u);
  // Full-extent query sees everything exactly once.
  EXPECT_EQ(index_query(idx, rect{-3000, -3000, 3000, 3000}), naive_query(ref, {-3000, -3000, 3000, 3000}));
}

TEST(VioIndex, BulkLoadThenMutate) {
  std::vector<std::pair<std::uint64_t, rect>> items;
  std::unordered_map<std::uint64_t, rect> ref;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    const coord_t x = static_cast<coord_t>((i * 37) % 1000);
    const coord_t y = static_cast<coord_t>((i * 61) % 800);
    const rect b{x, y, static_cast<coord_t>(x + 20), static_cast<coord_t>(y + 20)};
    items.emplace_back(i, b);
    ref[i] = b;
  }
  violation_index idx{std::span<const std::pair<std::uint64_t, rect>>(items)};
  EXPECT_EQ(idx.size(), 500u);
  EXPECT_EQ(index_query(idx, rect{100, 100, 400, 300}), naive_query(ref, {100, 100, 400, 300}));

  for (std::uint64_t i = 1; i <= 500; i += 2) {
    EXPECT_TRUE(idx.erase(i));
    ref.erase(i);
  }
  EXPECT_EQ(idx.size(), 250u);
  EXPECT_EQ(index_query(idx, rect{0, 0, 1020, 820}), naive_query(ref, {0, 0, 1020, 820}));
  EXPECT_FALSE(idx.contains(1));
  EXPECT_TRUE(idx.contains(2));
}

// violation_db::in_window must stay byte-identical to the linear reference
// scan while the store churns through the exact mutations a session recheck
// performs: erase_touching purges, add_unique inserts.
TEST(VioIndex, InWindowMatchesScanUnderChurn) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<coord_t> pos(0, 1500);
  violation_db db("churn");

  std::vector<checks::violation> seed;
  for (int i = 0; i < 300; ++i) seed.push_back(at(pos(rng), pos(rng)));
  db.add("R.A", seed);
  db.add("R.B", std::vector<checks::violation>{at(10, 10), at(700, 700)});

  const auto check_windows = [&](const char* when) {
    for (int q = 0; q < 40; ++q) {
      const coord_t x = pos(rng), y = pos(rng);
      const rect w{x, y, static_cast<coord_t>(x + 250), static_cast<coord_t>(y + 250)};
      EXPECT_EQ(db.in_window(w), db.in_window_scan(w)) << when << " window " << q;
    }
  };

  check_windows("after bulk add");
  for (int round = 0; round < 5; ++round) {
    const coord_t x = pos(rng), y = pos(rng);
    db.erase_touching("R.A", {x, y, static_cast<coord_t>(x + 400), static_cast<coord_t>(y + 400)});
    for (int i = 0; i < 40; ++i) db.add_unique("R.A", at(pos(rng), pos(rng)));
    check_windows("after churn round");
  }
  db.erase_rule("R.B");
  check_windows("after erase_rule");
  // The index followed the mutations incrementally — it was built once and
  // kept coherent, not rebuilt from scratch on every query.
  EXPECT_EQ(db.index_stats().size, db.size());
}

TEST(VioIndex, KeyExtentRoundTrip) {
  const checks::violation v = at(123, -456);
  const std::string key = violation_key("M1.S.1", v);
  const std::optional<rect> ext = key_extent(key);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(*ext, marker_box(v));

  // Rule names may contain '|' — the parser anchors from the right.
  const std::string odd = violation_key("weird|rule", v);
  const std::optional<rect> ext2 = key_extent(odd);
  ASSERT_TRUE(ext2.has_value());
  EXPECT_EQ(*ext2, marker_box(v));

  EXPECT_FALSE(key_extent("not a key").has_value());
  EXPECT_FALSE(key_extent("a|b|c").has_value());
  EXPECT_FALSE(key_extent("").has_value());
}

}  // namespace
}  // namespace odrc::report
