// Violation database tests: grouping, windowed queries, text/JSON output.
#include "report/violation_db.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "engine/engine.hpp"
#include "workload/workload.hpp"

namespace odrc::report {
namespace {

checks::violation at(coord_t x, coord_t y, checks::rule_kind kind = checks::rule_kind::spacing) {
  return {kind, 19, 19, edge{{x, y}, {static_cast<coord_t>(x + 10), y}},
          edge{{x, static_cast<coord_t>(y + 10)}, {static_cast<coord_t>(x + 10),
                                                   static_cast<coord_t>(y + 10)}},
          100};
}

TEST(ViolationDb, SummarizeGroupsInOrder) {
  violation_db db("t");
  db.add("M1.S.1", std::vector<checks::violation>{at(0, 0), at(100, 0)});
  db.add("M1.W.1", std::vector<checks::violation>{at(200, 0, checks::rule_kind::width)});
  db.add("M1.S.1", std::vector<checks::violation>{at(300, 0)});
  EXPECT_EQ(db.size(), 4u);
  const auto rows = db.summarize();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].rule, "M1.S.1");
  EXPECT_EQ(rows[0].count, 3u);
  EXPECT_EQ(rows[1].rule, "M1.W.1");
  EXPECT_EQ(rows[1].kind, checks::rule_kind::width);
}

TEST(ViolationDb, WindowQueryMatchesBruteForce) {
  violation_db db;
  std::vector<checks::violation> vs;
  for (int i = 0; i < 200; ++i) {
    vs.push_back(at(static_cast<coord_t>((i * 37) % 1000), static_cast<coord_t>((i * 61) % 800)));
  }
  db.add("R", vs);
  const rect window{100, 100, 400, 300};
  const auto hits = db.in_window(window);
  std::size_t expected = 0;
  for (const entry& e : db.entries()) {
    if (window.overlaps(marker_box(e.v))) ++expected;
  }
  EXPECT_EQ(hits.size(), expected);
  for (const std::size_t i : hits) {
    EXPECT_TRUE(window.overlaps(marker_box(db.entries()[i].v)));
  }
}

TEST(ViolationDb, IndexInvalidatedByAdd) {
  violation_db db;
  db.add("R", std::vector<checks::violation>{at(0, 0)});
  EXPECT_EQ(db.in_window(rect{-5, -5, 5, 5}).size(), 1u);
  db.add("R", std::vector<checks::violation>{at(1, 1)});
  EXPECT_EQ(db.in_window(rect{-5, -5, 5, 5}).size(), 2u);
}

TEST(ViolationDb, ExtentAndEmpty) {
  violation_db db;
  EXPECT_TRUE(db.extent().empty());
  db.add("R", std::vector<checks::violation>{at(0, 0), at(500, 200)});
  EXPECT_EQ(db.extent(), (rect{0, 0, 510, 210}));
}

TEST(ViolationDb, TextOutput) {
  violation_db db("mydesign");
  db.add("M1.S.1", std::vector<checks::violation>{at(0, 0)});
  std::ostringstream out;
  db.write_text(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("mydesign"), std::string::npos);
  EXPECT_NE(s.find("M1.S.1"), std::string::npos);
  EXPECT_NE(s.find("spacing L19"), std::string::npos);
  EXPECT_NE(s.find("measured=100"), std::string::npos);
}

TEST(ViolationDb, JsonStructure) {
  violation_db db("d\"esign");  // quote needs escaping
  db.add("M1.S.1", std::vector<checks::violation>{at(0, 0), at(50, 50)});
  db.add("EN", std::vector<checks::violation>{
                   {checks::rule_kind::enclosure, 21, 19, edge{{0, 0}, {8, 0}},
                    edge{{-5, 3}, {20, 3}}, 9}});
  std::ostringstream out;
  db.write_json(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"design\": \"d\\\"esign\""), std::string::npos);
  EXPECT_NE(s.find("\"total\": 3"), std::string::npos);
  EXPECT_NE(s.find("\"kind\": \"spacing\""), std::string::npos);
  EXPECT_NE(s.find("\"kind\": \"enclosure\""), std::string::npos);
  EXPECT_NE(s.find("\"layer2\": 19"), std::string::npos);
  EXPECT_NE(s.find("\"bbox\": [0, 0, 10, 10]"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST(ViolationDb, EndToEndWithEngine) {
  auto spec = workload::spec_for("uart", 0.5);
  spec.inject = {1, 1, 1, 1};
  const auto g = workload::generate(spec);
  drc_engine e;
  violation_db db(g.lib.name());
  using workload::layers;
  using workload::tech;
  db.add("M1.W.1", e.run_width(g.lib, layers::M1, tech::wire_width).violations);
  db.add("M1.S.1", e.run_spacing(g.lib, layers::M1, tech::wire_space).violations);
  EXPECT_GE(db.size(), 2u);
  // Every injected M1 site is discoverable through the windowed query.
  for (const workload::site& s : g.sites) {
    if (s.layer1 != layers::M1) continue;
    if (s.kind != checks::rule_kind::width && s.kind != checks::rule_kind::spacing) continue;
    EXPECT_FALSE(db.in_window(s.marker.inflated(1)).empty());
  }
}

// ---------------------------------------------------------------------------
// Report parsing + diffing
// ---------------------------------------------------------------------------

TEST(ReportDiff, ParseRoundTripsWriteText) {
  violation_db db("d");
  db.add("M1.S.1", std::vector<checks::violation>{at(0, 0), at(100, 50)});
  db.add("V1.M1.EN.1",
         std::vector<checks::violation>{
             {checks::rule_kind::enclosure, 21, 19, edge{{0, 0}, {8, 0}},
              edge{{-5, 3}, {20, 3}}, 9}});
  std::stringstream ss;
  db.write_text(ss);
  const auto lines = parse_text_report(ss);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].rule, "M1.S.1");
  EXPECT_EQ(lines[0].kind, checks::rule_kind::spacing);
  EXPECT_EQ(lines[0].layer1, 19);
  EXPECT_EQ(lines[0].box, (rect{0, 0, 10, 10}));
  EXPECT_EQ(lines[0].measured, 100);
  EXPECT_EQ(lines[2].kind, checks::rule_kind::enclosure);
  EXPECT_EQ(lines[2].layer1, 21);
  EXPECT_EQ(lines[2].layer2, 19);
}

TEST(ReportDiff, MalformedLinesThrow) {
  for (const char* bad : {"garbage", "R spacing L19 [0,0 .. 10,10]",
                          "R frobnicate L19 [0,0 .. 10,10] measured=1",
                          "R spacing X19 [0,0 .. 10,10] measured=1",
                          "R spacing L19 [0;0 .. 10,10] measured=1"}) {
    std::istringstream ss(bad);
    EXPECT_THROW((void)parse_text_report(ss), std::runtime_error) << bad;
  }
}

TEST(ReportDiff, DiffFindsFixedAndIntroduced) {
  auto mk = [](coord_t x, area_t m) {
    report_line rl;
    rl.rule = "R";
    rl.kind = checks::rule_kind::spacing;
    rl.layer1 = rl.layer2 = 19;
    rl.box = {x, 0, static_cast<coord_t>(x + 10), 10};
    rl.measured = m;
    return rl;
  };
  const std::vector<report_line> baseline{mk(0, 100), mk(50, 100), mk(90, 64)};
  const std::vector<report_line> current{mk(50, 100), mk(90, 64), mk(200, 25)};
  const report_diff d = diff_reports(baseline, current);
  ASSERT_EQ(d.fixed.size(), 1u);
  EXPECT_EQ(d.fixed[0].box.x_min, 0);
  ASSERT_EQ(d.introduced.size(), 1u);
  EXPECT_EQ(d.introduced[0].box.x_min, 200);
  EXPECT_FALSE(d.clean());
  EXPECT_TRUE(diff_reports(current, current).clean());
}

TEST(ReportDiff, DuplicateLinesCollapse) {
  // Set semantics, exactly like diff_keys: a report that lists the same
  // violation twice (overlapping windows, a rerun appended to one file) must
  // not surface phantom fixed/introduced lines. Regression for the old
  // multiset behavior where {rl, rl} vs {rl} reported one "fixed".
  report_line rl;
  rl.rule = "R";
  rl.kind = checks::rule_kind::width;
  rl.layer1 = rl.layer2 = 19;
  rl.box = {0, 0, 10, 10};
  rl.measured = 100;
  report_line other = rl;
  other.box = {50, 0, 60, 10};

  const report_diff same = diff_reports({rl, rl}, {rl});
  EXPECT_TRUE(same.fixed.empty());
  EXPECT_TRUE(same.introduced.empty());
  EXPECT_TRUE(same.clean());

  // Dedup applies to both sides and never hides a real difference.
  const report_diff d = diff_reports({rl, rl, other}, {other, other});
  ASSERT_EQ(d.fixed.size(), 1u);
  EXPECT_EQ(d.fixed[0].box.x_min, 0);
  EXPECT_TRUE(d.introduced.empty());
}

}  // namespace
}  // namespace odrc::report
