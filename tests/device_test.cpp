// Tests for the simulated GPGPU substrate: stream ordering, async copies,
// events, kernel launches, stream-ordered allocation, the scan/reduce
// primitives, and host/device overlap.
#include "device/device.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "device/scan.hpp"

namespace odrc::device {
namespace {

TEST(Device, MallocFree) {
  context ctx(2);
  void* p = ctx.malloc(1024);
  ASSERT_NE(p, nullptr);
  ctx.free(p);
  EXPECT_GE(ctx.bytes_allocated(), 1024u);
}

TEST(Device, RoundTripCopy) {
  context ctx(2);
  stream s(ctx);
  std::vector<int> host(256);
  std::iota(host.begin(), host.end(), 0);
  buffer<int> dev(host.size(), ctx);
  dev.upload(s, host);
  std::vector<int> back(host.size(), -1);
  dev.download(s, back);
  s.synchronize();
  EXPECT_EQ(back, host);
  EXPECT_EQ(ctx.bytes_h2d(), 256 * sizeof(int));
  EXPECT_EQ(ctx.bytes_d2h(), 256 * sizeof(int));
}

TEST(Device, KernelLaunchCoversIndexSpace) {
  context ctx(3);
  stream s(ctx);
  constexpr std::uint32_t n = 1000;
  buffer<std::uint32_t> dev(n, ctx);
  std::uint32_t* p = dev.device_ptr();
  s.launch((n + 63) / 64, 64, [p](thread_id t) {
    const std::uint32_t i = t.global();
    if (i < n) p[i] = i * 3;
  });
  std::vector<std::uint32_t> out(n);
  dev.download(s, out);
  s.synchronize();
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * 3);
  EXPECT_EQ(ctx.kernels_launched(), 1u);
  EXPECT_EQ(ctx.threads_executed(), ((n + 63) / 64) * 64u);
}

TEST(Device, ThreadIdFieldsConsistent) {
  context ctx(2);
  stream s(ctx);
  std::atomic<int> bad{0};
  s.launch(4, 32, [&](thread_id t) {
    if (t.block_dim != 32 || t.grid_dim != 4) bad.fetch_add(1);
    if (t.lane >= 32 || t.block >= 4) bad.fetch_add(1);
    if (t.global() != t.block * 32 + t.lane) bad.fetch_add(1);
  });
  s.synchronize();
  EXPECT_EQ(bad.load(), 0);
}

TEST(Device, StreamOperationsAreOrdered) {
  context ctx(4);
  stream s(ctx);
  buffer<int> dev(1, ctx);
  int* p = dev.device_ptr();
  // 100 dependent increments must observe strict FIFO order.
  s.launch(1, 1, [p](thread_id) { *p = 0; });
  for (int k = 0; k < 100; ++k) {
    s.launch(1, 1, [p](thread_id) { *p += 1; });
  }
  int result = 0;
  s.memcpy_d2h(&result, p, sizeof(int));
  s.synchronize();
  EXPECT_EQ(result, 100);
}

TEST(Device, HostCallbackRunsInOrder) {
  context ctx(2);
  stream s(ctx);
  std::vector<int> order;
  s.host_callback([&] { order.push_back(1); });
  s.host_callback([&] { order.push_back(2); });
  s.host_callback([&] { order.push_back(3); });
  s.synchronize();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Device, EventsSynchronizeAcrossStreams) {
  context ctx(4);
  stream producer(ctx);
  stream consumer(ctx);
  buffer<int> dev(1, ctx);
  int* p = dev.device_ptr();

  event ready;
  producer.launch(1, 1, [p](thread_id) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    *p = 77;
  });
  producer.record(ready);

  consumer.wait(ready);
  int seen = 0;
  consumer.memcpy_d2h(&seen, p, sizeof(int));
  consumer.synchronize();
  EXPECT_EQ(seen, 77);
  EXPECT_TRUE(ready.ready());
}

TEST(Device, HostWaitOnEvent) {
  context ctx(2);
  stream s(ctx);
  event done;
  std::atomic<bool> flag{false};
  s.host_callback([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    flag = true;
  });
  s.record(done);
  done.wait();
  EXPECT_TRUE(flag.load());
}

TEST(Device, StreamOrderedAllocator) {
  context ctx(2);
  stream s(ctx);
  int* allocated = nullptr;
  s.malloc_async(sizeof(int) * 16, [&](void* p) { allocated = static_cast<int*>(p); });
  s.host_callback([&] { allocated[3] = 9; });
  int out = 0;
  s.host_callback([&] { out = allocated[3]; });
  s.free_async(nullptr);  // no-op free is legal
  s.synchronize();
  EXPECT_EQ(out, 9);
  ctx.free(allocated);
}

TEST(Device, HostOverlapsWithDeviceWork) {
  // The Section V-C property: after enqueueing device work the host thread
  // is immediately free. We verify the enqueue returns before the kernel
  // completes.
  context ctx(2);
  stream s(ctx);
  std::atomic<bool> kernel_done{false};
  s.launch(1, 1, [&](thread_id) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    kernel_done = true;
  });
  // Back on the host immediately; the kernel must still be running.
  EXPECT_FALSE(kernel_done.load());
  s.synchronize();
  EXPECT_TRUE(kernel_done.load());
}

TEST(Device, DeviceSynchronizeWaitsAllStreams) {
  context ctx(2);
  stream s1(ctx), s2(ctx);
  std::atomic<int> done{0};
  s1.host_callback([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    done.fetch_add(1);
  });
  s2.host_callback([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    done.fetch_add(1);
  });
  ctx.synchronize();
  EXPECT_EQ(done.load(), 2);
}

TEST(Device, CountersReset) {
  context ctx(2);
  stream s(ctx);
  s.launch(1, 1, [](thread_id) {});
  s.synchronize();
  EXPECT_GT(ctx.kernels_launched(), 0u);
  ctx.reset_counters();
  EXPECT_EQ(ctx.kernels_launched(), 0u);
  EXPECT_EQ(ctx.threads_executed(), 0u);
}

TEST(Device, ZeroSizedLaunchIsNoop) {
  context ctx(2);
  stream s(ctx);
  s.launch(0, 64, [](thread_id) { FAIL(); });
  s.launch(4, 0, [](thread_id) { FAIL(); });
  s.synchronize();
  SUCCEED();
}

TEST(Device, BufferMoveSemantics) {
  context ctx(2);
  buffer<int> a(10, ctx);
  int* p = a.device_ptr();
  buffer<int> b = std::move(a);
  EXPECT_EQ(b.device_ptr(), p);
  EXPECT_EQ(a.device_ptr(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.empty());
  a = std::move(b);
  EXPECT_EQ(a.device_ptr(), p);
}

// ---------------------------------------------------------------------------
// scan / reduce primitives
// ---------------------------------------------------------------------------

class ScanSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScanSizes, ExclusiveScanMatchesStd) {
  const std::uint32_t n = GetParam();
  context ctx(3);
  stream s(ctx);
  std::vector<std::uint32_t> host(n);
  for (std::uint32_t i = 0; i < n; ++i) host[i] = (i * 7 + 3) % 11;

  buffer<std::uint32_t> in(n, ctx), out(n, ctx), scratch(scan_scratch_size(n), ctx);
  in.upload(s, host);
  exclusive_scan(s, in.device_ptr(), out.device_ptr(), n, scratch.device_ptr());
  std::vector<std::uint32_t> got(n);
  out.download(s, got);
  s.synchronize();

  std::vector<std::uint32_t> expected(n);
  std::exclusive_scan(host.begin(), host.end(), expected.begin(), 0u);
  EXPECT_EQ(got, expected);
}

TEST_P(ScanSizes, ReduceMatchesStd) {
  const std::uint32_t n = GetParam();
  context ctx(3);
  stream s(ctx);
  std::vector<std::uint32_t> host(n);
  for (std::uint32_t i = 0; i < n; ++i) host[i] = i % 13;

  buffer<std::uint32_t> in(n, ctx), scratch(scan_scratch_size(n) + 1, ctx), out(1, ctx);
  in.upload(s, host);
  reduce_sum(s, in.device_ptr(), n, scratch.device_ptr(), out.device_ptr());
  std::vector<std::uint32_t> got(1);
  out.download(s, got);
  s.synchronize();
  EXPECT_EQ(got[0], std::accumulate(host.begin(), host.end(), 0u));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(1u, 2u, 255u, 256u, 257u, 1000u, 4096u, 10000u));

TEST(Scan, ZeroLength) {
  context ctx(2);
  stream s(ctx);
  buffer<std::uint32_t> scratch(2, ctx), out(1, ctx);
  exclusive_scan(s, nullptr, nullptr, 0, scratch.device_ptr());
  reduce_sum(s, nullptr, 0, scratch.device_ptr(), out.device_ptr());
  std::vector<std::uint32_t> got(1, 99);
  out.download(s, got);
  s.synchronize();
  EXPECT_EQ(got[0], 0u);
}

}  // namespace
}  // namespace odrc::device
