#include "infra/interval_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace odrc {
namespace {

std::vector<std::uint32_t> sorted(std::vector<std::uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(IntervalTree, EmptyQueries) {
  interval_tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.query({0, 100, 0}).empty());
  EXPECT_FALSE(t.remove({0, 1, 0}));
}

TEST(IntervalTree, SingleInterval) {
  interval_tree t;
  t.insert({10, 20, 7});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.query({15, 15, 0}), std::vector<std::uint32_t>{7});
  EXPECT_EQ(t.query({20, 30, 0}), std::vector<std::uint32_t>{7});  // touching counts
  EXPECT_EQ(t.query({0, 10, 0}), std::vector<std::uint32_t>{7});
  EXPECT_TRUE(t.query({21, 30, 0}).empty());
  EXPECT_TRUE(t.query({0, 9, 0}).empty());
}

TEST(IntervalTree, RemoveSpecificDuplicate) {
  interval_tree t;
  t.insert({0, 10, 1});
  t.insert({0, 10, 1});
  t.insert({0, 10, 2});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.remove({0, 10, 1}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(sorted(t.query({5, 5, 0})), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(t.remove({0, 10, 1}));
  EXPECT_FALSE(t.remove({0, 10, 1}));
  EXPECT_EQ(t.query({5, 5, 0}), std::vector<std::uint32_t>{2});
}

TEST(IntervalTree, PaperFigure3Style) {
  // Several horizontal MBR intervals as in Fig. 3's sweepline snapshot.
  interval_tree t;
  t.insert({0, 4, 0});
  t.insert({2, 7, 1});
  t.insert({6, 9, 2});
  t.insert({11, 14, 3});
  EXPECT_EQ(sorted(t.query({3, 3, 9})), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(sorted(t.query({5, 6, 9})), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(sorted(t.query({0, 20, 9})), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_TRUE(t.query({10, 10, 9}).empty());
}

TEST(IntervalTree, ClearReuse) {
  interval_tree t;
  for (int i = 0; i < 100; ++i) t.insert({i, i + 5, static_cast<std::uint32_t>(i)});
  EXPECT_EQ(t.size(), 100u);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.query({0, 1000, 0}).empty());
  t.insert({1, 2, 42});
  EXPECT_EQ(t.query({0, 10, 0}), std::vector<std::uint32_t>{42});
}

TEST(IntervalTree, HeightStaysLogarithmicOnUniformInput) {
  interval_tree t;
  std::mt19937 rng(99);
  std::uniform_int_distribution<coord_t> d(0, 1000000);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const coord_t lo = d(rng);
    t.insert({lo, lo + 50, i});
  }
  // Midpoint-keyed routing on uniform data stays near-balanced; 4 * log2(n)
  // is a generous bound that catches degenerate list-shaped trees.
  EXPECT_LE(t.height(), 48);
}

// Property test: tree query == brute-force scan, under interleaved inserts
// and removes.
class IntervalTreeRandom : public ::testing::TestWithParam<int> {};

TEST_P(IntervalTreeRandom, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<coord_t> lo_d(-500, 500);
  std::uniform_int_distribution<coord_t> len_d(0, 120);
  std::uniform_int_distribution<int> op_d(0, 9);

  interval_tree t;
  std::vector<interval> live;
  for (int step = 0; step < 2000; ++step) {
    const int op = op_d(rng);
    if (op < 6 || live.empty()) {
      const coord_t lo = lo_d(rng);
      const interval iv{lo, lo + len_d(rng), static_cast<std::uint32_t>(step)};
      t.insert(iv);
      live.push_back(iv);
    } else if (op < 8) {
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const std::size_t idx = pick(rng);
      EXPECT_TRUE(t.remove(live[idx]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const coord_t lo = lo_d(rng);
      const interval q{lo, lo + len_d(rng), 0};
      std::vector<std::uint32_t> expected;
      for (const interval& iv : live) {
        if (iv.overlaps(q)) expected.push_back(iv.id);
      }
      EXPECT_EQ(sorted(t.query(q)), sorted(expected)) << "step " << step;
    }
    ASSERT_EQ(t.size(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalTreeRandom, ::testing::Range(1, 9));

}  // namespace
}  // namespace odrc
