// Tests for the frozen snapshot store (DESIGN.md §9): the .snap blob must be
// invisible in the results (checks over a mapped snapshot report exactly what
// a freshly built snapshot reports, including after copy-on-write edits), and
// a damaged blob must be rejected at load instead of producing wrong answers.
#include "engine/snapshot_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/plan.hpp"
#include "engine/rule.hpp"
#include "engine/snapshot.hpp"
#include "serve/edits.hpp"
#include "serve/session.hpp"
#include "workload/workload.hpp"

namespace odrc::engine {
namespace {

using workload::layers;
using workload::tech;

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

std::vector<rules::rule> mixed_deck() {
  return {
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space).named("M1.S"),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space).named("M2.S"),
      rules::layer(layers::V1)
          .enclosed_by(layers::M1)
          .greater_than(tech::via_enclosure)
          .named("V1.EN"),
      rules::layer(layers::M1).width().greater_than(tech::wire_width).named("M1.W"),
      rules::layer(layers::M1).area().greater_than(tech::min_area).named("M1.A"),
  };
}

db::library make_lib() {
  workload::design_spec spec = workload::spec_for("uart", 0.3);
  spec.inject = {2, 2, 1, 1};
  return workload::generate(spec).lib;
}

std::string temp_snap(const std::string& tag) {
  return (std::filesystem::temp_directory_path() / ("odrc_store_test_" + tag + ".snap"))
      .string();
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Full-deck results over the mapped snapshot must be byte-identical to the
// fresh build, per rule, in both execution modes — and the library coming
// back out of the blob must be structurally identical to the one that went in.
TEST(SnapshotStore, RoundTripCheckEquivalence) {
  const db::library lib = make_lib();
  const std::string path = temp_snap("roundtrip");
  const snapshot_build_stats st = build_snapshot_file(lib, path);
  EXPECT_EQ(st.cells, lib.cell_count());
  EXPECT_GT(st.views, 0u);

  const auto fs = frozen_snapshot::load(path);
  const db::library lib2 = fs->make_library();
  ASSERT_EQ(lib2.cell_count(), lib.cell_count());
  EXPECT_EQ(lib2.name(), lib.name());
  EXPECT_EQ(lib2.expanded_polygon_count(), lib.expanded_polygon_count());
  EXPECT_EQ(lib2.top_cells(), lib.top_cells());

  const std::vector<rules::rule> deck = mixed_deck();
  std::vector<exec_plan> plans;
  for (const rules::rule& r : deck) plans.push_back(compile_plan(r));

  for (const mode m : {mode::sequential, mode::parallel}) {
    engine_config cfg;
    cfg.run_mode = m;

    drc_engine fresh_eng(cfg);
    fresh_eng.add_rules(deck);
    layout_snapshot fresh_snap(lib);
    const deck_report fresh = fresh_eng.check_deck(lib, plans, fresh_snap);

    drc_engine frozen_eng(cfg);
    frozen_eng.add_rules(deck);
    layout_snapshot frozen_snap(lib2, fs);
    ASSERT_TRUE(frozen_snap.frozen_backed());
    const deck_report mapped = frozen_eng.check_deck(lib2, plans, frozen_snap);

    ASSERT_EQ(mapped.per_rule.size(), deck.size());
    bool any = false;
    for (std::size_t i = 0; i < deck.size(); ++i) {
      EXPECT_EQ(norm(mapped.per_rule[i].violations), norm(fresh.per_rule[i].violations))
          << "mode=" << static_cast<int>(m) << " rule " << deck[i].name;
      any = any || !fresh.per_rule[i].violations.empty();
    }
    EXPECT_TRUE(any);
    // Nothing was edited, so nothing may have been thawed or masked.
    EXPECT_EQ(frozen_snap.overlay_entries(), 0u);
  }
}

// `snapshot build` must be loadable by `snapshot info`'s path too: the
// info_text surface doubles as a cheap full-validation pass.
TEST(SnapshotStore, InfoReportsSections) {
  const db::library lib = make_lib();
  const std::string path = temp_snap("info");
  build_snapshot_file(lib, path);
  const auto fs = frozen_snapshot::load(path);
  const std::string info = fs->info_text();
  EXPECT_NE(info.find("snapshot version 1"), std::string::npos);
  EXPECT_NE(info.find("section library"), std::string::npos);
  EXPECT_NE(info.find("section packed"), std::string::npos);
  EXPECT_EQ(fs->section_count(), 5u);
  EXPECT_EQ(fs->cell_count(), lib.cell_count());
}

TEST(SnapshotStore, RejectsTruncatedFile) {
  const db::library lib = make_lib();
  const std::string path = temp_snap("trunc");
  build_snapshot_file(lib, path);
  const std::vector<char> bytes = slurp(path);
  ASSERT_GT(bytes.size(), 256u);

  // Too small for even the header.
  spit(path, std::vector<char>(bytes.begin(), bytes.begin() + 16));
  EXPECT_THROW(frozen_snapshot::load(path), snapshot_format_error);

  // Header intact but the tail is gone.
  spit(path, std::vector<char>(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(bytes.size() / 2)));
  EXPECT_THROW(frozen_snapshot::load(path), snapshot_format_error);
}

TEST(SnapshotStore, RejectsBitFlips) {
  const db::library lib = make_lib();
  const std::string path = temp_snap("flip");
  build_snapshot_file(lib, path);
  const std::vector<char> good = slurp(path);

  // Flip one bit in several places spread across the sections; every single
  // one must be caught by a section (or table) checksum.
  for (const double frac : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    std::vector<char> bad = good;
    bad[static_cast<std::size_t>(static_cast<double>(bad.size()) * frac)] ^= 0x10;
    spit(path, bad);
    EXPECT_THROW(frozen_snapshot::load(path), snapshot_format_error) << "frac=" << frac;
  }
}

TEST(SnapshotStore, RejectsWrongMagicAndVersion) {
  const db::library lib = make_lib();
  const std::string path = temp_snap("hdr");
  build_snapshot_file(lib, path);
  const std::vector<char> good = slurp(path);

  std::vector<char> bad_magic = good;
  bad_magic[0] ^= 0x01;  // u64 magic at offset 0
  spit(path, bad_magic);
  EXPECT_THROW(frozen_snapshot::load(path), snapshot_format_error);

  std::vector<char> bad_version = good;
  bad_version[8] = 99;  // u32 version at offset 8
  spit(path, bad_version);
  EXPECT_THROW(frozen_snapshot::load(path), snapshot_format_error);

  EXPECT_THROW(frozen_snapshot::load(path + ".does_not_exist"), snapshot_format_error);
}

// A randomized edit script applied to a cold session and a frozen-backed
// session must leave both with identical violation key sets after every
// recheck — the copy-on-write overlay is invisible — and must never write a
// byte back to the mapped file.
TEST(SnapshotCow, EditRecheckMatchesColdSession) {
  const db::library lib = make_lib();
  const std::string path = temp_snap("cow");
  build_snapshot_file(lib, path);
  const std::vector<char> file_before = slurp(path);

  const auto fs = frozen_snapshot::load(path);
  serve::session cold(lib, mixed_deck());
  serve::session frozen(fs, fs->make_library(), mixed_deck());
  cold.check_full();
  frozen.check_full();
  ASSERT_EQ(frozen.keys(), cold.keys());

  const std::string top = lib.at(lib.top_cells().front()).name();
  std::mt19937 rng(7);
  std::uniform_int_distribution<coord_t> pos(0, 4000);
  std::size_t added = 0;
  for (int round = 0; round < 6; ++round) {
    std::ostringstream script;
    if (round % 3 == 2 && added > 0) {
      // Undo one of the adds: layer-local index = original count + added - 1.
      std::size_t m1 = 0;
      for (const auto& p : lib.at(lib.top_cells().front()).polygons()) {
        if (p.layer == layers::M1) ++m1;
      }
      script << "remove_poly " << top << ' ' << int(layers::M1) << ' ' << (m1 + added - 1)
             << '\n';
      --added;
    } else {
      const coord_t x = pos(rng), y = pos(rng);
      script << "add_poly " << top << ' ' << int(layers::M1) << ' ' << x << ' ' << y << ' '
             << (x + 10) << ' ' << (y + 10) << '\n';
      ++added;
    }
    const auto ops = serve::parse_edit_script(script.str());
    cold.apply(ops);
    frozen.apply(ops);
    cold.recheck();
    frozen.recheck();
    EXPECT_EQ(frozen.keys(), cold.keys()) << "round " << round;
  }

  // The mapped file is immutable: every edit went to the overlay.
  EXPECT_EQ(slurp(path), file_before);
}

// Engine-level overlay accounting: invalidating a master masks its frozen
// entries (overlay_entries grows) and subsequent region checks still agree
// with a fresh snapshot over the edited library.
TEST(SnapshotCow, InvalidateMasksFrozenEntries) {
  db::library lib = make_lib();
  const std::string path = temp_snap("mask");
  build_snapshot_file(lib, path);
  const auto fs = frozen_snapshot::load(path);

  db::library lib2 = fs->make_library();
  layout_snapshot snap(lib2, fs);
  const std::vector<rules::rule> deck = {
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space)};
  std::vector<exec_plan> plans{compile_plan(deck[0])};
  drc_engine eng;
  eng.add_rules(deck);
  (void)eng.check_deck(lib2, plans, snap);
  EXPECT_EQ(snap.overlay_entries(), 0u);

  const db::cell_id top = lib2.top_cells().front();
  lib2.at(top).add_rect(layers::M1, {900000, 900000, 900010, 900010});
  snap.invalidate_master(top);
  snap.invalidate_instances();
  EXPECT_GT(snap.overlay_entries(), 0u);

  layout_snapshot fresh(lib2);
  drc_engine eng2;
  eng2.add_rules(deck);
  EXPECT_EQ(norm(eng.check_deck(lib2, plans, snap).per_rule[0].violations),
            norm(eng2.check_deck(lib2, plans, fresh).per_rule[0].violations));
}

}  // namespace
}  // namespace odrc::engine
