// Multi-patterning coloring rule tests: conflict-graph construction and
// 2-colorability (odd-cycle) detection.
#include <gtest/gtest.h>

#include "checks/poly_checks.hpp"
#include "engine/engine.hpp"
#include "workload/workload.hpp"

namespace odrc::engine {
namespace {

TEST(PolygonsWithin, DistanceSemantics) {
  const polygon a = polygon::from_rect({0, 0, 10, 10});
  const polygon near = polygon::from_rect({15, 0, 25, 10});     // gap 5
  const polygon far = polygon::from_rect({40, 0, 50, 10});      // gap 30
  const polygon touching = polygon::from_rect({10, 0, 20, 10}); // gap 0
  const polygon inside = polygon::from_rect({2, 2, 8, 8});
  EXPECT_TRUE(checks::polygons_within(a, near, 6));
  EXPECT_FALSE(checks::polygons_within(a, near, 5));  // strict
  EXPECT_FALSE(checks::polygons_within(a, far, 20));
  EXPECT_TRUE(checks::polygons_within(a, touching, 1));
  EXPECT_TRUE(checks::polygons_within(a, inside, 1));
  EXPECT_TRUE(checks::polygons_within(inside, a, 1));
}

// Three bars in a triangle-ish conflict: A-B, B-C, A-C all within 30.
db::library odd_cycle_lib() {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(7, {0, 0, 18, 100});
  lib.at(top).add_rect(7, {40, 0, 58, 100});   // 22 from A
  lib.at(top).add_rect(7, {20, 110, 38, 210}); // within 30 of both (y gap 10)
  return lib;
}

TEST(Coloring, OddCycleFlagged) {
  drc_engine e;
  const auto r = e.run_coloring(odd_cycle_lib(), 7, 30);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, checks::rule_kind::coloring);
}

TEST(Coloring, ChainIsTwoColorable) {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  // A path of 6 bars, each conflicting only with its neighbours.
  for (int i = 0; i < 6; ++i) {
    lib.at(top).add_rect(7, {static_cast<coord_t>(i * 40), 0,
                             static_cast<coord_t>(i * 40 + 18), 100});
  }
  drc_engine e;
  EXPECT_TRUE(e.run_coloring(lib, 7, 30).violations.empty());
  // Tighter spacing creates second-neighbour conflicts (gap 62 < 70):
  // triangle chains appear -> odd cycles.
  EXPECT_FALSE(e.run_coloring(lib, 7, 70).violations.empty());
}

TEST(Coloring, EvenCycleIsClean) {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  // Four bars on a square: each conflicts with exactly two neighbours
  // (horizontal gap 22, vertical gap 20; diagonal distance > 28).
  lib.at(top).add_rect(7, {0, 0, 18, 100});
  lib.at(top).add_rect(7, {40, 0, 58, 100});
  lib.at(top).add_rect(7, {0, 120, 18, 220});
  lib.at(top).add_rect(7, {40, 120, 58, 220});
  drc_engine e;
  EXPECT_TRUE(e.run_coloring(lib, 7, 25).violations.empty());
}

TEST(Coloring, RuleDslDispatch) {
  drc_engine e;
  const rules::rule r = rules::layer(7).two_colorable(30).named("M1.MP.1");
  EXPECT_EQ(r.kind, checks::rule_kind::coloring);
  EXPECT_EQ(r.distance, 30);
  const auto rep = e.check(odd_cycle_lib(), r);
  EXPECT_EQ(rep.violations.size(), 1u);
}

TEST(Coloring, WorkloadM2IsDecomposable) {
  // M2 tracks at 36 pitch with per-row bands: conflicts form per-track
  // chains at spacing 20 (> the 18 gap), which are bipartite.
  const auto g = workload::generate(workload::spec_for("uart", 1.0));
  drc_engine e;
  EXPECT_TRUE(e.run_coloring(g.lib, workload::layers::M2, 20).violations.empty());
}

TEST(Coloring, EmptyLayer) {
  db::library lib;
  (void)lib.add_cell("top");
  drc_engine e;
  EXPECT_TRUE(e.run_coloring(lib, 7, 30).violations.empty());
}

}  // namespace
}  // namespace odrc::engine
