// Adversarial property test: random hierarchical layouts (random masters,
// nested references with rotations/reflections, random top-level shapes) are
// checked by the engine (both modes) against an INDEPENDENT brute-force
// oracle that flattens by explicit transform application and tests every
// edge pair with the shared predicates — no sweepline, no partition, no
// memoization, no MBR filters. Any transform, partitioning, memo-reuse or
// candidate-enumeration bug shows up as a set difference.
#include <gtest/gtest.h>

#include <random>

#include "checks/edge_checks.hpp"
#include "db/flatten.hpp"
#include "engine/engine.hpp"

namespace odrc {
namespace {

using checks::violation;

// Build a random 2-level library on layers 1 (metal) and 2 (via-ish).
db::library random_library(std::mt19937& rng) {
  std::uniform_int_distribution<coord_t> pos(0, 600);
  std::uniform_int_distribution<coord_t> size(8, 90);
  std::uniform_int_distribution<int> count(1, 5);
  std::uniform_int_distribution<int> rot(0, 3), flip(0, 1);

  db::library lib;
  std::vector<db::cell_id> masters;
  const int n_masters = count(rng);
  for (int mi = 0; mi < n_masters; ++mi) {
    const db::cell_id m = lib.add_cell("m" + std::to_string(mi));
    const int polys = count(rng);
    for (int p = 0; p < polys; ++p) {
      const coord_t x = pos(rng), y = pos(rng);
      lib.at(m).add_rect(1, {x, y, static_cast<coord_t>(x + size(rng)),
                             static_cast<coord_t>(y + size(rng))});
    }
    if (flip(rng)) {
      const coord_t x = pos(rng), y = pos(rng);
      lib.at(m).add_rect(2, {x, y, static_cast<coord_t>(x + 8), static_cast<coord_t>(y + 8)});
    }
    masters.push_back(m);
  }
  // A mid-level cell referencing masters with random isometries.
  const db::cell_id mid = lib.add_cell("mid");
  for (int i = 0; i < 3; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, masters.size() - 1);
    transform t{{static_cast<coord_t>(pos(rng) * 2), static_cast<coord_t>(pos(rng) * 2)},
                static_cast<std::uint16_t>(rot(rng)), flip(rng) != 0, 1};
    lib.at(mid).add_ref({masters[pick(rng)], t});
  }
  // Top: the mid cell twice + direct masters + direct shapes.
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_ref({mid, transform{{0, 0}, 0, false, 1}});
  lib.at(top).add_ref(
      {mid, transform{{static_cast<coord_t>(1000 + pos(rng)), static_cast<coord_t>(pos(rng))},
                      static_cast<std::uint16_t>(rot(rng)), flip(rng) != 0, 1}});
  for (int i = 0; i < 4; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, masters.size() - 1);
    transform t{{static_cast<coord_t>(pos(rng) * 3), static_cast<coord_t>(pos(rng) * 3)},
                static_cast<std::uint16_t>(rot(rng)), flip(rng) != 0, 1};
    lib.at(top).add_ref({masters[pick(rng)], t});
  }
  for (int i = 0; i < 10; ++i) {
    const coord_t x = pos(rng), y = static_cast<coord_t>(pos(rng) + 2000);
    lib.at(top).add_rect(1, {x, y, static_cast<coord_t>(x + size(rng)),
                             static_cast<coord_t>(y + size(rng))});
  }
  return lib;
}

std::vector<violation> norm(std::vector<violation> v) {
  checks::normalize_all(v);
  return v;
}

// The oracle: flatten with db::flatten_layer (transform application only —
// itself covered by direct unit tests) and run all-pairs predicates.
std::vector<violation> oracle_spacing(const db::library& lib, db::layer_t layer, coord_t d) {
  std::vector<violation> out;
  for (const db::cell_id top : lib.top_cells()) {
    const auto flat = db::flatten_layer(lib, top, layer);
    for (std::size_t i = 0; i < flat.size(); ++i) {
      const polygon& a = flat[i].poly;
      for (std::size_t ii = 0; ii < a.edge_count(); ++ii) {
        for (std::size_t jj = ii + 1; jj < a.edge_count(); ++jj) {
          if (auto d2 = checks::check_space_pair_any(a.edge_at(ii), a.edge_at(jj), true, d)) {
            out.push_back(checks::make_space_violation(layer, a.edge_at(ii), a.edge_at(jj), *d2));
          }
        }
      }
      for (std::size_t j = i + 1; j < flat.size(); ++j) {
        const polygon& b = flat[j].poly;
        for (std::size_t ii = 0; ii < a.edge_count(); ++ii) {
          for (std::size_t jj = 0; jj < b.edge_count(); ++jj) {
            if (auto d2 =
                    checks::check_space_pair_any(a.edge_at(ii), b.edge_at(jj), false, d)) {
              out.push_back(
                  checks::make_space_violation(layer, a.edge_at(ii), b.edge_at(jj), *d2));
            }
          }
        }
      }
    }
  }
  return out;
}

std::vector<violation> oracle_width(const db::library& lib, db::layer_t layer, coord_t w) {
  std::vector<violation> out;
  for (const db::cell_id top : lib.top_cells()) {
    for (const auto& fp : db::flatten_layer(lib, top, layer)) {
      const polygon& p = fp.poly;
      for (std::size_t i = 0; i < p.edge_count(); ++i) {
        for (std::size_t j = i + 1; j < p.edge_count(); ++j) {
          if (auto d = checks::check_width_pair(p.edge_at(i), p.edge_at(j), w)) {
            out.push_back(checks::make_width_violation(layer, p.edge_at(i), p.edge_at(j), *d));
          }
        }
      }
    }
  }
  return out;
}

class RandomLayout : public ::testing::TestWithParam<int> {};

TEST_P(RandomLayout, EngineMatchesOracle) {
  std::mt19937 rng(static_cast<std::uint32_t>(GetParam()) * 2654435761u + 1);
  for (int iter = 0; iter < 8; ++iter) {
    const db::library lib = random_library(rng);
    drc_engine seq({.run_mode = engine::mode::sequential});
    drc_engine par({.run_mode = engine::mode::parallel});

    for (const coord_t d : {coord_t{12}, coord_t{25}}) {
      const auto want_s = norm(oracle_spacing(lib, 1, d));
      EXPECT_EQ(norm(seq.run_spacing(lib, 1, d).violations), want_s)
          << "seq spacing d=" << d << " iter=" << iter;
      EXPECT_EQ(norm(par.run_spacing(lib, 1, d).violations), want_s)
          << "par spacing d=" << d << " iter=" << iter;

      const auto want_w = norm(oracle_width(lib, 1, d));
      EXPECT_EQ(norm(seq.run_width(lib, 1, d).violations), want_w)
          << "seq width d=" << d << " iter=" << iter;
      EXPECT_EQ(norm(par.run_width(lib, 1, d).violations), want_w)
          << "par width d=" << d << " iter=" << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLayout, ::testing::Range(1, 7));

}  // namespace
}  // namespace odrc
