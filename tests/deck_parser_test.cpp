// Text rule-deck parser tests.
#include "engine/deck_parser.hpp"

#include <gtest/gtest.h>

#include "engine/engine.hpp"

namespace odrc::rules {
namespace {

TEST(DeckParser, EmptyAndCommentsOnly) {
  EXPECT_TRUE(parse_deck("").empty());
  EXPECT_TRUE(parse_deck("# just a comment\n\n   \n# another\n").empty());
}

TEST(DeckParser, AllRuleKinds) {
  const auto deck = parse_deck(
      "rule M1.W.1   width       layer=19 min=18\n"
      "rule M1.S.1   spacing     layer=19 min=18\n"
      "rule V1.EN    enclosure   inner=21 outer=19 min=5\n"
      "rule M1.A.1   area        layer=19 min=1000\n"
      "rule SHAPES   rectilinear\n"
      "rule SHAPES2  rectilinear layer=20\n"
      "rule OV       overlap     layer=21 with=19 min_area=64\n"
      "rule NC       notcut      layer=19 with=21 min_area=200\n");
  ASSERT_EQ(deck.size(), 8u);

  EXPECT_EQ(deck[0].kind, checks::rule_kind::width);
  EXPECT_EQ(deck[0].name, "M1.W.1");
  EXPECT_EQ(deck[0].layer1, 19);
  EXPECT_EQ(deck[0].distance, 18);

  EXPECT_EQ(deck[1].kind, checks::rule_kind::spacing);
  EXPECT_EQ(deck[1].spacing.count, 1);

  EXPECT_EQ(deck[2].kind, checks::rule_kind::enclosure);
  EXPECT_EQ(deck[2].layer1, 21);
  EXPECT_EQ(deck[2].layer2, 19);
  EXPECT_EQ(deck[2].distance, 5);

  EXPECT_EQ(deck[3].kind, checks::rule_kind::area);
  EXPECT_EQ(deck[3].min_area, 1000);

  EXPECT_EQ(deck[4].kind, checks::rule_kind::rectilinear);
  EXPECT_EQ(deck[4].layer1, any_layer);
  EXPECT_EQ(deck[5].layer1, 20);

  EXPECT_EQ(deck[6].kind, checks::rule_kind::overlap_area);
  EXPECT_EQ(deck[6].min_area, 64);

  EXPECT_EQ(deck[7].kind, checks::rule_kind::notcut_area);
  EXPECT_EQ(deck[7].layer2, 21);
}

TEST(DeckParser, ConditionalSpacingTiers) {
  const auto deck = parse_deck("rule S spacing layer=19 min=18 prl=500:24,1500:30\n");
  ASSERT_EQ(deck.size(), 1u);
  EXPECT_EQ(deck[0].spacing.count, 3);
  EXPECT_EQ(deck[0].spacing.required(0), 18);
  EXPECT_EQ(deck[0].spacing.required(600), 24);
  EXPECT_EQ(deck[0].spacing.required(2000), 30);
  EXPECT_EQ(deck[0].distance, 30);
}

TEST(DeckParser, TrailingCommentOnRuleLine) {
  const auto deck = parse_deck("rule W width layer=1 min=10 # inline note\n");
  ASSERT_EQ(deck.size(), 1u);
  EXPECT_EQ(deck[0].distance, 10);
}

TEST(DeckParser, ErrorsCarryLineNumbers) {
  auto expect_line = [](const std::string& text, std::size_t line) {
    try {
      (void)parse_deck(text);
      FAIL() << text;
    } catch (const deck_error& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_line("bogus W width layer=1 min=10\n", 1);
  expect_line("# fine\nrule W frobnicate layer=1\n", 2);
  expect_line("rule W width layer=1\n", 1);                 // missing min
  expect_line("rule W width layer=1 min=ten\n", 1);         // bad int
  expect_line("rule W width layer=1 min=10 extra=3\n", 1);  // unknown key
  expect_line("rule W width layer=1 min=10 min=11\n", 1);   // duplicate key
  expect_line("rule W width layer=1 oops\n", 1);            // not key=value
  expect_line("rule S spacing layer=1 min=10 prl=bad\n", 1);
  expect_line("rule S spacing layer=1 min=10 prl=1:2,3:4,5:6,7:8\n", 1);  // too many tiers
  expect_line("rule\n", 1);  // missing name/kind
}

TEST(DeckParser, ParsedDeckRunsInEngine) {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(1, {0, 0, 10, 100});  // narrow: width violation
  drc_engine e;
  e.add_rules(parse_deck("rule W width layer=1 min=18\n"));
  const auto r = e.check(lib);
  EXPECT_EQ(r.violations.size(), 1u);
}

TEST(DeckParser, MissingFileThrows) {
  EXPECT_THROW((void)parse_deck_file("/nonexistent/deck.txt"), std::runtime_error);
}

}  // namespace
}  // namespace odrc::rules
