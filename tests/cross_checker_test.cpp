// The strongest integration property in the repository: all six checkers
// (OpenDRC sequential, OpenDRC parallel, KLayout-analogue flat/deep/tile,
// X-Check) share the edge-pair predicates and must therefore produce
// IDENTICAL violation sets on every design and rule — they only differ in
// candidate enumeration. Also verifies injected ground-truth sites are all
// found and that the clean fabric produces no stray violations.
#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "engine/engine.hpp"
#include "workload/workload.hpp"

namespace odrc {
namespace {

using workload::layers;
using workload::tech;

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

struct rule_case {
  const char* label;
  checks::rule_kind kind;
  db::layer_t l1;
  db::layer_t l2;
  coord_t dist;
};

const rule_case kRules[] = {
    {"M1.W.1", checks::rule_kind::width, layers::M1, layers::M1, tech::wire_width},
    {"M2.W.1", checks::rule_kind::width, layers::M2, layers::M2, tech::wire_width},
    {"M3.W.1", checks::rule_kind::width, layers::M3, layers::M3, tech::wire_width},
    {"M1.S.1", checks::rule_kind::spacing, layers::M1, layers::M1, tech::wire_space},
    {"M2.S.1", checks::rule_kind::spacing, layers::M2, layers::M2, tech::wire_space},
    {"M3.S.1", checks::rule_kind::spacing, layers::M3, layers::M3, tech::wire_space},
    {"V1.M1.EN.1", checks::rule_kind::enclosure, layers::V1, layers::M1, tech::via_enclosure},
    {"V2.M2.EN.1", checks::rule_kind::enclosure, layers::V2, layers::M2, tech::via_enclosure},
    {"V2.M3.EN.1", checks::rule_kind::enclosure, layers::V2, layers::M3, tech::via_enclosure},
    {"M1.A.1", checks::rule_kind::area, layers::M1, layers::M1, 0},
    {"M2.A.1", checks::rule_kind::area, layers::M2, layers::M2, 0},
};

class CrossChecker : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 protected:
  static workload::generated make(const char* design) {
    auto spec = workload::spec_for(design, 0.25);
    spec.inject = {2, 2, 2, 2};
    return workload::generate(spec);
  }
};

TEST_P(CrossChecker, AllCheckersAgree) {
  const char* design = std::get<0>(GetParam());
  const rule_case& rc = kRules[static_cast<std::size_t>(std::get<1>(GetParam()))];
  const auto g = make(design);

  drc_engine seq({.run_mode = engine::mode::sequential});
  drc_engine par({.run_mode = engine::mode::parallel});
  baseline::flat_checker flat;
  baseline::deep_checker deep;
  baseline::tile_checker tile(4);
  baseline::xcheck xc;

  std::vector<checks::violation> reference;
  std::vector<std::pair<const char*, std::vector<checks::violation>>> results;

  switch (rc.kind) {
    case checks::rule_kind::width:
      reference = norm(flat.run_width(g.lib, rc.l1, rc.dist).violations);
      results = {
          {"seq", norm(seq.run_width(g.lib, rc.l1, rc.dist).violations)},
          {"par", norm(par.run_width(g.lib, rc.l1, rc.dist).violations)},
          {"deep", norm(deep.run_width(g.lib, rc.l1, rc.dist).violations)},
          {"tile", norm(tile.run_width(g.lib, rc.l1, rc.dist).violations)},
          {"xcheck", norm(xc.run_width(g.lib, rc.l1, rc.dist).violations)},
      };
      break;
    case checks::rule_kind::spacing:
      reference = norm(flat.run_spacing(g.lib, rc.l1, rc.dist).violations);
      results = {
          {"seq", norm(seq.run_spacing(g.lib, rc.l1, rc.dist).violations)},
          {"par", norm(par.run_spacing(g.lib, rc.l1, rc.dist).violations)},
          {"deep", norm(deep.run_spacing(g.lib, rc.l1, rc.dist).violations)},
          {"tile", norm(tile.run_spacing(g.lib, rc.l1, rc.dist).violations)},
          {"xcheck", norm(xc.run_spacing(g.lib, rc.l1, rc.dist).violations)},
      };
      break;
    case checks::rule_kind::enclosure:
      reference = norm(flat.run_enclosure(g.lib, rc.l1, rc.l2, rc.dist).violations);
      results = {
          {"seq", norm(seq.run_enclosure(g.lib, rc.l1, rc.l2, rc.dist).violations)},
          {"par", norm(par.run_enclosure(g.lib, rc.l1, rc.l2, rc.dist).violations)},
          {"deep", norm(deep.run_enclosure(g.lib, rc.l1, rc.l2, rc.dist).violations)},
          {"tile", norm(tile.run_enclosure(g.lib, rc.l1, rc.l2, rc.dist).violations)},
          {"xcheck", norm(xc.run_enclosure(g.lib, rc.l1, rc.l2, rc.dist).violations)},
      };
      break;
    case checks::rule_kind::area:
      reference = norm(flat.run_area(g.lib, rc.l1, tech::min_area).violations);
      results = {
          {"seq", norm(seq.run_area(g.lib, rc.l1, tech::min_area).violations)},
          {"deep", norm(deep.run_area(g.lib, rc.l1, tech::min_area).violations)},
          {"tile", norm(tile.run_area(g.lib, rc.l1, tech::min_area).violations)},
      };
      // X-Check cannot run area checks (paper Table I).
      EXPECT_FALSE(xc.run_area(g.lib, rc.l1, tech::min_area).has_value());
      break;
    default:
      FAIL();
  }

  for (const auto& [name, vs] : results) {
    EXPECT_EQ(vs, reference) << rc.label << " on " << design << ": " << name
                             << " disagrees with flat (" << vs.size() << " vs "
                             << reference.size() << ")";
  }

  // Ground truth: every injected site of this rule is hit by at least one
  // violation, and every violation lies inside some injected site marker
  // (the generated fabric is violation-free by construction).
  std::size_t matched_sites = 0;
  for (const workload::site& s : g.sites) {
    if (s.kind != rc.kind || s.layer1 != rc.l1) continue;
    if (rc.kind == checks::rule_kind::enclosure && s.layer2 != rc.l2) continue;
    ++matched_sites;
    bool hit = false;
    for (const checks::violation& v : reference) {
      if (s.marker.inflated(1).overlaps(v.e1.mbr().join(v.e2.mbr()))) {
        hit = true;
        break;
      }
    }
    EXPECT_TRUE(hit) << rc.label << " site not detected";
  }
  EXPECT_GT(matched_sites, 0u) << rc.label;
  for (const checks::violation& v : reference) {
    const rect m = v.e1.mbr().join(v.e2.mbr());
    bool inside_site = false;
    for (const workload::site& s : g.sites) {
      if (s.marker.inflated(1).overlaps(m)) {
        inside_site = true;
        break;
      }
    }
    EXPECT_TRUE(inside_site) << rc.label << " stray violation at " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndRules, CrossChecker,
    ::testing::Combine(::testing::Values("uart", "ibex", "sha3"),
                       ::testing::Range(0, static_cast<int>(std::size(kRules)))),
    [](const auto& info) {
      std::string label = kRules[static_cast<std::size_t>(std::get<1>(info.param))].label;
      for (char& c : label) {
        if (c == '.') c = '_';
      }
      return std::string(std::get<0>(info.param)) + "_" + label;
    });

// Clean designs (no injection) must produce zero violations everywhere.
class CleanFabric : public ::testing::TestWithParam<const char*> {};

TEST_P(CleanFabric, NoViolationsAnywhere) {
  auto spec = workload::spec_for(GetParam(), 0.2);
  const auto g = workload::generate(spec);
  drc_engine seq;
  for (const db::layer_t m : {layers::M1, layers::M2, layers::M3}) {
    EXPECT_TRUE(seq.run_width(g.lib, m, tech::wire_width).violations.empty()) << "W" << m;
    EXPECT_TRUE(seq.run_spacing(g.lib, m, tech::wire_space).violations.empty()) << "S" << m;
    EXPECT_TRUE(seq.run_area(g.lib, m, tech::min_area).violations.empty()) << "A" << m;
  }
  EXPECT_TRUE(
      seq.run_enclosure(g.lib, layers::V1, layers::M1, tech::via_enclosure).violations.empty());
  EXPECT_TRUE(
      seq.run_enclosure(g.lib, layers::V2, layers::M2, tech::via_enclosure).violations.empty());
  EXPECT_TRUE(
      seq.run_enclosure(g.lib, layers::V2, layers::M3, tech::via_enclosure).violations.empty());
  EXPECT_TRUE(seq.check(g.lib, rules::polygons().is_rectilinear()).violations.empty());
}

INSTANTIATE_TEST_SUITE_P(Designs, CleanFabric,
                         ::testing::Values("aes", "ethmac", "ibex", "jpeg", "sha3", "uart"));

}  // namespace
}  // namespace odrc
