// Deck-batching equivalence tests: rules grouped onto a shared pipeline pass
// (engine_config::batch) must report exactly the violations of per-rule
// execution, in every mode and with every candidate strategy, with per-rule
// attribution preserved.
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "engine/plan.hpp"
#include "workload/workload.hpp"

namespace odrc::engine {
namespace {

using workload::layers;
using workload::tech;

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

// A deck built to batch: 9 rules over 4 layers, of which 7 are pair rules
// sharing 3 groups — M1 spacing ×3 (one with a PRL tier), M2 spacing ×2,
// V1-in-M1 enclosure ×2 — plus two intra rules that run solo.
std::vector<rules::rule> batched_deck() {
  return {
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space),
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space - 4),
      rules::layer(layers::M1).spacing().greater_than(12).when_projection_over(40, 24),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space),
      rules::layer(layers::M2).spacing().greater_than(10),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(tech::via_enclosure),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(2),
      rules::layer(layers::M1).width().greater_than(tech::wire_width),
      rules::layer(layers::M1).area().greater_than(tech::min_area),
  };
}

db::library make_lib() {
  workload::design_spec spec = workload::spec_for("uart", 0.15);
  spec.inject = {2, 3, 2, 1};
  return workload::generate(spec).lib;
}

TEST(DeckBatching, GroupingKeyIsLayerSet) {
  std::vector<exec_plan> plans;
  for (const rules::rule& r : batched_deck()) plans.push_back(compile_plan(r));
  const std::vector<plan_group> groups = group_pair_plans(plans);

  ASSERT_EQ(groups.size(), 3u);
  // Deck order preserved: M1 spacing, M2 spacing, (V1, M1) enclosure.
  EXPECT_EQ(groups[0].layer1, layers::M1);
  EXPECT_FALSE(groups[0].two_layer);
  EXPECT_EQ(groups[0].members, (std::vector<std::size_t>{0, 1, 2}));
  // Group inflation is the max over members: the PRL rule's 24 dbu tier.
  EXPECT_EQ(groups[0].inflate, 24);

  EXPECT_EQ(groups[1].layer1, layers::M2);
  EXPECT_EQ(groups[1].members, (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(groups[1].inflate, tech::wire_space);

  EXPECT_EQ(groups[2].layer1, layers::V1);
  EXPECT_EQ(groups[2].layer2, layers::M1);
  EXPECT_TRUE(groups[2].two_layer);
  EXPECT_EQ(groups[2].members, (std::vector<std::size_t>{5, 6}));
  EXPECT_EQ(groups[2].inflate, tech::via_enclosure);
}

// Batched == unbatched == concurrent, for both modes and all three candidate
// strategies.
TEST(DeckBatching, BatchedDeckMatchesPerRuleExecution) {
  const db::library lib = make_lib();
  const std::vector<rules::rule> deck = batched_deck();

  for (const mode m : {mode::sequential, mode::parallel}) {
    for (const candidate_strategy cs :
         {candidate_strategy::sweepline, candidate_strategy::rtree,
          candidate_strategy::quadtree}) {
      engine_config on;
      on.run_mode = m;
      on.candidates = cs;
      on.batch = true;
      engine_config off = on;
      off.batch = false;

      drc_engine batched(on);
      batched.add_rules(deck);
      const auto vb = norm(batched.check(lib).violations);
      EXPECT_FALSE(vb.empty());

      drc_engine per_rule(off);
      per_rule.add_rules(deck);
      EXPECT_EQ(vb, norm(per_rule.check(lib).violations))
          << "mode=" << static_cast<int>(m) << " candidates=" << static_cast<int>(cs);

      drc_engine concurrent(on);
      concurrent.add_rules(deck);
      EXPECT_EQ(vb, norm(concurrent.check_concurrent(lib).violations))
          << "mode=" << static_cast<int>(m) << " candidates=" << static_cast<int>(cs);
    }
  }
}

// check_deck keeps per-rule reports separable: each rule's batched report
// holds exactly the violations of a solo run of that rule.
TEST(DeckBatching, PerRuleAttributionSurvivesBatching) {
  const db::library lib = make_lib();
  const std::vector<rules::rule> deck = batched_deck();

  drc_engine e;
  e.add_rules(deck);
  deck_report dr = e.check_deck(lib);
  ASSERT_EQ(dr.per_rule.size(), deck.size());

  std::vector<checks::violation> merged;
  for (std::size_t i = 0; i < deck.size(); ++i) {
    const auto solo = e.check(lib, deck[i]);
    EXPECT_EQ(norm(dr.per_rule[i].violations), norm(solo.violations)) << "rule " << i;
    merged.insert(merged.end(), dr.per_rule[i].violations.begin(),
                  dr.per_rule[i].violations.end());
  }
  EXPECT_EQ(norm(dr.total.violations), norm(merged));
}

TEST(DeckBatching, AmortizationStatsRecorded) {
  const db::library lib = make_lib();
  const std::vector<rules::rule> deck = batched_deck();

  drc_engine batched;
  batched.add_rules(deck);
  const deck_stats on = batched.check_deck(lib).total.deck;
  EXPECT_EQ(on.groups, 3u);
  EXPECT_EQ(on.batched_rules, 7u);  // the two intra rules run solo
  EXPECT_GT(on.shared_seconds, 0.0);
  EXPECT_GE(on.saved_seconds, 0.0);

  engine_config off_cfg;
  off_cfg.batch = false;
  drc_engine off(off_cfg);
  off.add_rules(deck);
  const deck_stats off_stats = off.check_deck(lib).total.deck;
  EXPECT_EQ(off_stats.groups, 7u);  // one singleton group per pair rule
  EXPECT_EQ(off_stats.batched_rules, 0u);
  EXPECT_EQ(off_stats.saved_seconds, 0.0);
}

// The ablation switches compose with batching: partition off and memoization
// off must not change the batched violation set.
TEST(DeckBatching, AblationsComposeWithBatching) {
  const db::library lib = make_lib();
  const std::vector<rules::rule> deck = batched_deck();

  engine_config base;
  drc_engine ref(base);
  ref.add_rules(deck);
  const auto expected = norm(ref.check(lib).violations);

  engine_config no_part = base;
  no_part.enable_partition = false;
  drc_engine a(no_part);
  a.add_rules(deck);
  EXPECT_EQ(expected, norm(a.check(lib).violations));

  engine_config no_memo = base;
  no_memo.enable_memoization = false;
  drc_engine b(no_memo);
  b.add_rules(deck);
  EXPECT_EQ(expected, norm(b.check(lib).violations));

  engine_config host_par = base;
  host_par.host_parallel = true;
  drc_engine c(host_par);
  c.add_rules(deck);
  EXPECT_EQ(expected, norm(c.check(lib).violations));
}

}  // namespace
}  // namespace odrc::engine
