// kd-tree tests mirroring the quadtree/R-tree suites: query correctness,
// sweepline pair equivalence, degenerate-input robustness and engine use.
#include "geo/kdtree.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "sweep/sweepline.hpp"

namespace odrc::geo {
namespace {

std::vector<rect> random_rects(int n, std::uint32_t seed, coord_t span = 5000) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::uniform_int_distribution<coord_t> size(1, 150);
  std::vector<rect> out;
  for (int i = 0; i < n; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    out.push_back({x, y, static_cast<coord_t>(x + size(rng)), static_cast<coord_t>(y + size(rng))});
  }
  return out;
}

TEST(Kdtree, EmptyAndSingle) {
  const kdtree empty({});
  int hits = 0;
  empty.query(rect{-10, -10, 10, 10}, [&](std::uint32_t) { ++hits; });
  EXPECT_EQ(hits, 0);

  const std::vector<rect> one{{0, 0, 10, 10}};
  const kdtree t(one);
  std::vector<std::uint32_t> got;
  t.query(rect{5, 5, 6, 6}, [&](std::uint32_t i) { got.push_back(i); });
  EXPECT_EQ(got, std::vector<std::uint32_t>{0});
}

TEST(Kdtree, DepthIsLogarithmicOnUniformInput) {
  const auto rs = random_rects(4096, 3);
  const kdtree t(rs, 8);
  EXPECT_GE(t.depth(), 6);
  EXPECT_LE(t.depth(), 20);
}

TEST(Kdtree, AllIdenticalRectsDoNotRecurseForever) {
  // Every rect straddles every split: the degenerate-split guard must
  // produce a fat leaf instead of infinite recursion.
  const std::vector<rect> same(500, rect{0, 0, 100, 100});
  const kdtree t(same, 4);
  std::set<std::uint32_t> got;
  t.query(rect{50, 50, 60, 60}, [&](std::uint32_t i) { got.insert(i); });
  EXPECT_EQ(got.size(), 500u);
}

class KdtreeRandom : public ::testing::TestWithParam<int> {};

TEST_P(KdtreeRandom, QueryMatchesBruteForce) {
  const auto rs = random_rects(500, static_cast<std::uint32_t>(GetParam()));
  const kdtree t(rs, 6);
  std::mt19937 rng(GetParam() * 31 + 9);
  std::uniform_int_distribution<coord_t> pos(0, 5000);
  for (int q = 0; q < 100; ++q) {
    const coord_t x = pos(rng), y = pos(rng);
    const rect window{x, y, static_cast<coord_t>(x + 350), static_cast<coord_t>(y + 250)};
    std::set<std::uint32_t> got, want;
    t.query(window, [&](std::uint32_t i) { got.insert(i); });
    for (std::uint32_t i = 0; i < rs.size(); ++i) {
      if (rs[i].overlaps(window)) want.insert(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST_P(KdtreeRandom, PairsMatchSweepline) {
  const auto rs = random_rects(400, static_cast<std::uint32_t>(GetParam()) + 77);
  const kdtree t(rs);
  std::set<std::pair<std::uint32_t, std::uint32_t>> from_tree, from_sweep;
  t.overlap_pairs([&](std::uint32_t i, std::uint32_t j) { from_tree.insert({i, j}); });
  sweep::overlap_pairs(rs, [&](std::uint32_t i, std::uint32_t j) { from_sweep.insert({i, j}); });
  EXPECT_EQ(from_tree, from_sweep);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdtreeRandom, ::testing::Range(1, 5));

TEST(Kdtree, PruningVisitsFewNodesOnSmallWindows) {
  const auto rs = random_rects(5000, 11, 100000);
  const kdtree t(rs, 8);
  int hits = 0;
  t.query(rect{0, 0, 1000, 1000}, [&](std::uint32_t) { ++hits; });
  EXPECT_LT(t.last_nodes_visited(), 5000u / 4);
}

}  // namespace
}  // namespace odrc::geo
