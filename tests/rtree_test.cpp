// Packed R-tree tests: construction shape, query correctness vs brute force,
// pair enumeration equivalence with the sweepline, and engine integration.
#include "geo/rtree.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "engine/engine.hpp"
#include "sweep/sweepline.hpp"
#include "workload/workload.hpp"

namespace odrc::geo {
namespace {

std::vector<rect> random_rects(int n, std::uint32_t seed, coord_t span = 5000) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::uniform_int_distribution<coord_t> size(1, 150);
  std::vector<rect> out;
  for (int i = 0; i < n; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    out.push_back({x, y, static_cast<coord_t>(x + size(rng)), static_cast<coord_t>(y + size(rng))});
  }
  return out;
}

TEST(Rtree, EmptyTree) {
  const rtree t({});
  EXPECT_EQ(t.size(), 0u);
  int hits = 0;
  t.query(rect{-100, -100, 100, 100}, [&](std::uint32_t) { ++hits; });
  EXPECT_EQ(hits, 0);
}

TEST(Rtree, SingleItem) {
  const std::vector<rect> rs{{0, 0, 10, 10}};
  const rtree t(rs);
  EXPECT_EQ(t.height(), 1u);
  std::vector<std::uint32_t> hits;
  t.query(rect{5, 5, 6, 6}, [&](std::uint32_t i) { hits.push_back(i); });
  EXPECT_EQ(hits, std::vector<std::uint32_t>{0});
  hits.clear();
  t.query(rect{20, 20, 30, 30}, [&](std::uint32_t i) { hits.push_back(i); });
  EXPECT_TRUE(hits.empty());
}

TEST(Rtree, EmptyRectsNeverReported) {
  const std::vector<rect> rs{{0, 0, 10, 10}, rect{}, {5, 5, 15, 15}};
  const rtree t(rs);
  std::set<std::uint32_t> hits;
  t.query(rect{-100, -100, 100, 100}, [&](std::uint32_t i) { hits.insert(i); });
  EXPECT_EQ(hits, (std::set<std::uint32_t>{0, 2}));
}

TEST(Rtree, HeightGrowsLogarithmically) {
  const auto rs = random_rects(10000, 3);
  const rtree t(rs, 16);
  EXPECT_GE(t.height(), 3u);
  EXPECT_LE(t.height(), 5u);  // ceil(log16(10000)) = 4 (+1 slack)
  EXPECT_FALSE(t.bounds().empty());
}

class RtreeRandom : public ::testing::TestWithParam<int> {};

TEST_P(RtreeRandom, QueryMatchesBruteForce) {
  const auto rs = random_rects(500, static_cast<std::uint32_t>(GetParam()));
  const rtree t(rs, 8);
  std::mt19937 rng(GetParam() * 7 + 1);
  std::uniform_int_distribution<coord_t> pos(0, 5000);
  for (int q = 0; q < 100; ++q) {
    const coord_t x = pos(rng), y = pos(rng);
    const rect window{x, y, static_cast<coord_t>(x + 400), static_cast<coord_t>(y + 300)};
    std::set<std::uint32_t> got, want;
    t.query(window, [&](std::uint32_t i) { got.insert(i); });
    for (std::uint32_t i = 0; i < rs.size(); ++i) {
      if (rs[i].overlaps(window)) want.insert(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST_P(RtreeRandom, PairsMatchSweepline) {
  const auto rs = random_rects(400, static_cast<std::uint32_t>(GetParam()) + 100);
  const rtree t(rs);
  std::set<std::pair<std::uint32_t, std::uint32_t>> from_tree, from_sweep;
  t.overlap_pairs([&](std::uint32_t i, std::uint32_t j) { from_tree.insert({i, j}); });
  sweep::overlap_pairs(rs, [&](std::uint32_t i, std::uint32_t j) { from_sweep.insert({i, j}); });
  EXPECT_EQ(from_tree, from_sweep);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtreeRandom, ::testing::Range(1, 6));

TEST(Rtree, QueryPruningVisitsFewNodes) {
  const auto rs = random_rects(5000, 9, 100000);
  const rtree t(rs, 16);
  int hits = 0;
  t.query(rect{0, 0, 1000, 1000}, [&](std::uint32_t) { ++hits; });
  // A tiny window must not touch most of the tree.
  EXPECT_LT(t.last_nodes_visited(), 5000u / 4);
}

TEST(RtreeEngine, CandidateStrategyProducesSameViolations) {
  auto spec = workload::spec_for("ibex", 0.4);
  spec.inject = {2, 2, 2, 1};
  const auto g = workload::generate(spec);
  drc_engine sweep_eng({.candidates = engine::candidate_strategy::sweepline});
  drc_engine rtree_eng({.candidates = engine::candidate_strategy::rtree});
  using workload::layers;
  using workload::tech;
  for (const db::layer_t m : {layers::M1, layers::M2}) {
    auto a = sweep_eng.run_spacing(g.lib, m, tech::wire_space).violations;
    auto b = rtree_eng.run_spacing(g.lib, m, tech::wire_space).violations;
    checks::normalize_all(a);
    checks::normalize_all(b);
    EXPECT_EQ(a, b) << "layer " << m;
  }
  auto a = sweep_eng.run_enclosure(g.lib, layers::V1, layers::M1, tech::via_enclosure).violations;
  auto b = rtree_eng.run_enclosure(g.lib, layers::V1, layers::M1, tech::via_enclosure).violations;
  checks::normalize_all(a);
  checks::normalize_all(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace odrc::geo
