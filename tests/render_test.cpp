// Output rendering tests: SVG structure and violation-marker GDS export.
#include "render/render.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "engine/engine.hpp"
#include "gdsii/reader.hpp"
#include "gdsii/writer.hpp"
#include "workload/workload.hpp"

namespace odrc::render {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0, pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

db::library tiny_lib() {
  db::library lib("tiny");
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(1, {0, 0, 100, 20});
  lib.at(top).add_rect(1, {0, 40, 100, 60});
  lib.at(top).add_rect(2, {10, 5, 18, 13});
  return lib;
}

TEST(Svg, EmitsOnePolygonPerShape) {
  std::ostringstream out;
  write_svg(tiny_lib(), out);
  const std::string svg = out.str();
  EXPECT_EQ(count_occurrences(svg, "<polygon"), 3u);
  EXPECT_EQ(count_occurrences(svg, "<g id=\"layer1\""), 1u);
  EXPECT_EQ(count_occurrences(svg, "<g id=\"layer2\""), 1u);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, LayerFilter) {
  std::ostringstream out;
  svg_options opts;
  opts.layers = {2};
  write_svg(tiny_lib(), out, opts);
  const std::string svg = out.str();
  EXPECT_EQ(count_occurrences(svg, "<polygon"), 1u);
  EXPECT_EQ(count_occurrences(svg, "layer1"), 0u);
}

TEST(Svg, ViolationMarkersDrawn) {
  const db::library lib = tiny_lib();
  std::vector<checks::violation> vs{
      {checks::rule_kind::spacing, 1, 1, edge{{0, 20}, {100, 20}}, edge{{0, 40}, {100, 40}}, 400},
  };
  std::ostringstream out;
  write_svg(lib, out, {}, vs);
  const std::string svg = out.str();
  EXPECT_EQ(count_occurrences(svg, "<g id=\"violations\""), 1u);
  EXPECT_NE(svg.find("#ff2d2d"), std::string::npos);
  EXPECT_NE(svg.find("<title>spacing L1</title>"), std::string::npos);
}

TEST(Svg, EmptyLibraryStillValid) {
  db::library lib("empty");
  (void)lib.add_cell("top");
  std::ostringstream out;
  write_svg(lib, out);
  EXPECT_NE(out.str().find("</svg>"), std::string::npos);
}

TEST(Svg, DeterministicOutput) {
  std::ostringstream a, b;
  const db::library lib = tiny_lib();
  write_svg(lib, a);
  write_svg(lib, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Markers, RoundTripThroughGds) {
  auto spec = workload::spec_for("uart", 0.5);
  spec.inject = {1, 1, 1, 1};
  const auto g = workload::generate(spec);
  drc_engine e;
  using workload::layers;
  using workload::tech;
  const auto violations = e.run_spacing(g.lib, layers::M1, tech::wire_space).violations;
  ASSERT_FALSE(violations.empty());

  const db::library markers = violation_markers(violations, g.lib.name());
  EXPECT_EQ(markers.expanded_polygon_count(), violations.size());
  // Each marker carries the rule-kind layer and name.
  const db::cell& c = markers.at(*markers.find("MARKERS"));
  for (const db::polygon_elem& p : c.polygons()) {
    EXPECT_EQ(p.layer,
              marker_layer_base + static_cast<int>(checks::rule_kind::spacing));
    EXPECT_EQ(p.name, "spacing");
  }

  // Binary round trip.
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  gdsii::write(markers, buf);
  const db::library back = gdsii::read(buf);
  EXPECT_EQ(back.expanded_polygon_count(), violations.size());
}

TEST(Markers, DegenerateGeometryGetsExtent) {
  // Two collinear edges join to a zero-height MBR; the marker must still be
  // a valid polygon.
  std::vector<checks::violation> vs{
      {checks::rule_kind::width, 1, 1, edge{{0, 10}, {50, 10}}, edge{{0, 10}, {50, 10}}, 0},
  };
  const db::library markers = violation_markers(vs);
  const db::cell& c = markers.at(0);
  ASSERT_EQ(c.polygons().size(), 1u);
  EXPECT_GT(c.polygons()[0].poly.mbr().height(), 0);
  EXPECT_TRUE(c.polygons()[0].poly.is_rectilinear());
}

}  // namespace
}  // namespace odrc::render
