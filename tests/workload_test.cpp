// Workload generator tests: determinism, structure, scaling, and injection
// bookkeeping.
#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "db/mbr_index.hpp"
#include "gdsii/writer.hpp"

namespace odrc::workload {
namespace {

TEST(Workload, DesignNamesMatchPaper) {
  EXPECT_EQ(design_names(),
            (std::vector<std::string>{"aes", "ethmac", "ibex", "jpeg", "sha3", "uart"}));
  for (const std::string& n : design_names()) {
    EXPECT_EQ(spec_for(n).name, n);
  }
  EXPECT_THROW(spec_for("nonesuch"), std::invalid_argument);
}

TEST(Workload, DeterministicBytes) {
  auto spec = spec_for("ibex", 0.3);
  spec.inject = {1, 2, 1, 1};
  const auto a = generate(spec);
  const auto b = generate(spec);
  std::ostringstream sa(std::ios::binary), sb(std::ios::binary);
  gdsii::write(a.lib, sa);
  gdsii::write(b.lib, sb);
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_EQ(a.sites.size(), b.sites.size());
}

TEST(Workload, SeedChangesLayout) {
  auto s1 = spec_for("ibex", 0.3);
  auto s2 = s1;
  s2.seed += 1;
  std::ostringstream a(std::ios::binary), b(std::ios::binary);
  gdsii::write(generate(s1).lib, a);
  gdsii::write(generate(s2).lib, b);
  EXPECT_NE(a.str(), b.str());
}

TEST(Workload, AllLayersPopulated) {
  const auto g = generate(spec_for("uart", 1.0));
  const db::mbr_index idx(g.lib);
  for (const db::layer_t l :
       {layers::M1, layers::M2, layers::M3, layers::V1, layers::V2, layers::PWR}) {
    EXPECT_TRUE(std::find(idx.layers().begin(), idx.layers().end(), l) != idx.layers().end())
        << "layer " << l;
  }
}

TEST(Workload, HierarchyShape) {
  // Designs with blocks have depth 3 (top -> block -> std cell).
  const auto deep = generate(spec_for("aes", 0.3));
  EXPECT_EQ(deep.lib.hierarchy_depth(), 3u);
  const auto shallow = generate(spec_for("uart", 1.0));
  EXPECT_EQ(shallow.lib.hierarchy_depth(), 2u);
  // One top cell each.
  EXPECT_EQ(deep.lib.top_cells().size(), 1u);
  EXPECT_EQ(shallow.lib.top_cells().size(), 1u);
}

TEST(Workload, ScaleControlsSize) {
  const auto small = generate(spec_for("aes", 0.2));
  const auto large = generate(spec_for("aes", 0.6));
  EXPECT_LT(small.lib.expanded_polygon_count(), large.lib.expanded_polygon_count());
}

TEST(Workload, RelativeDesignSizes) {
  // ethmac > aes > uart, as in the paper's benchmark suite.
  const auto uart = generate(spec_for("uart", 0.3));
  const auto aes = generate(spec_for("aes", 0.3));
  const auto ethmac = generate(spec_for("ethmac", 0.3));
  EXPECT_LT(uart.lib.expanded_polygon_count(), aes.lib.expanded_polygon_count());
  EXPECT_LT(aes.lib.expanded_polygon_count(), ethmac.lib.expanded_polygon_count());
}

TEST(Workload, InjectionBookkeeping) {
  auto spec = spec_for("uart", 0.5);
  spec.inject = {3, 2, 1, 4};
  const auto g = generate(spec);
  // width/spacing/area per metal layer; enclosure per (via, metal) rule.
  EXPECT_EQ(g.site_count(checks::rule_kind::width, layers::M1), 3u);
  EXPECT_EQ(g.site_count(checks::rule_kind::width, layers::M2), 3u);
  EXPECT_EQ(g.site_count(checks::rule_kind::width, layers::M3), 3u);
  EXPECT_EQ(g.site_count(checks::rule_kind::spacing, layers::M2), 2u);
  EXPECT_EQ(g.site_count(checks::rule_kind::area, layers::M3), 4u);
  EXPECT_EQ(g.site_count(checks::rule_kind::enclosure, layers::V1, layers::M1), 1u);
  EXPECT_EQ(g.site_count(checks::rule_kind::enclosure, layers::V2, layers::M2), 1u);
  EXPECT_EQ(g.site_count(checks::rule_kind::enclosure, layers::V2, layers::M3), 1u);
  EXPECT_EQ(g.sites.size(), 3u * (3 + 2 + 4) + 3u);
}

TEST(Workload, NoInjectionNoSites) {
  const auto g = generate(spec_for("uart", 0.5));
  EXPECT_TRUE(g.sites.empty());
}

TEST(Workload, UsesArrayReferences) {
  const auto g = generate(spec_for("aes", 0.4));
  bool has_aref = false;
  for (const db::cell& c : g.lib.cells()) {
    if (!c.arrays().empty()) has_aref = true;
  }
  EXPECT_TRUE(has_aref);
}

TEST(Workload, MirroredRowsPresent) {
  const auto g = generate(spec_for("uart", 1.0));
  bool has_mirror = false;
  for (const db::cell& c : g.lib.cells()) {
    for (const db::cell_ref& r : c.refs()) {
      if (r.trans.reflect_x) has_mirror = true;
    }
  }
  EXPECT_TRUE(has_mirror);
}

TEST(Workload, ViasAreProperlySized) {
  const auto g = generate(spec_for("uart", 1.0));
  const db::mbr_index idx(g.lib);
  for (const db::element_ref& er : idx.elements_on_layer(layers::V1)) {
    const rect m = g.lib.at(er.cell).polygons()[er.poly_index].poly.mbr();
    EXPECT_EQ(m.width(), tech::via_size);
    EXPECT_EQ(m.height(), tech::via_size);
  }
}

}  // namespace
}  // namespace odrc::workload
