// Polygon-level check driver tests.
#include "checks/poly_checks.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace odrc::checks {
namespace {

check_stats g_stats;

TEST(CheckWidth, CompliantRectangle) {
  std::vector<violation> out;
  check_width(polygon::from_rect({0, 0, 18, 100}), 19, 18, out, g_stats);
  EXPECT_TRUE(out.empty());
}

TEST(CheckWidth, NarrowRectangleViolatesOnce) {
  std::vector<violation> out;
  check_width(polygon::from_rect({0, 0, 10, 100}), 19, 18, out, g_stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, rule_kind::width);
  EXPECT_EQ(out[0].measured, 100);  // 10^2
}

TEST(CheckWidth, SquareBelowMinimumViolatesTwice) {
  // Both the horizontal and vertical spans are narrow.
  std::vector<violation> out;
  check_width(polygon::from_rect({0, 0, 10, 10}), 19, 18, out, g_stats);
  EXPECT_EQ(out.size(), 2u);
}

TEST(CheckWidth, LShapeWithNarrowLeg) {
  // Vertical leg 10 wide, horizontal foot 30 tall: only the leg violates 18.
  polygon l{{{0, 0}, {0, 100}, {10, 100}, {10, 30}, {60, 30}, {60, 0}}};
  ASSERT_TRUE(l.is_clockwise());
  std::vector<violation> out;
  check_width(l, 19, 18, out, g_stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].measured, 100);
}

TEST(CheckArea, FlagsSmallPolygons) {
  std::vector<violation> out;
  check_area(polygon::from_rect({0, 0, 20, 20}), 19, 1000, out, g_stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].measured, 400);
  out.clear();
  check_area(polygon::from_rect({0, 0, 20, 50}), 19, 1000, out, g_stats);
  EXPECT_TRUE(out.empty());  // exactly min_area is compliant
}

TEST(CheckRectilinear, FlagsDiagonals) {
  std::vector<violation> out;
  check_rectilinear(polygon{{{0, 0}, {5, 5}, {10, 0}, {5, -5}}}, 19, out, g_stats);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  check_rectilinear(polygon::from_rect({0, 0, 5, 5}), 19, out, g_stats);
  EXPECT_TRUE(out.empty());
}

TEST(CheckSpacing, ParallelGapViolation) {
  const polygon a = polygon::from_rect({0, 0, 18, 100});
  const polygon b = polygon::from_rect({28, 0, 46, 100});  // gap 10
  std::vector<violation> out;
  check_spacing(a, b, 20, 18, out, g_stats);
  // 1 facing pair + 4 corner proximities (right edge vs b's horiz edges and
  // a's horiz edges vs b's left edge) + 2 collinear horizontal corner pairs.
  EXPECT_GE(out.size(), 1u);
  bool found_parallel = false;
  for (const violation& v : out) {
    if (v.measured == 100) found_parallel = true;
  }
  EXPECT_TRUE(found_parallel);
  out.clear();
  const polygon c = polygon::from_rect({36, 0, 54, 100});  // gap 18: compliant
  check_spacing(a, c, 20, 18, out, g_stats);
  EXPECT_TRUE(out.empty());
}

TEST(CheckSpacing, AbuttingShapesClean) {
  const polygon a = polygon::from_rect({0, 0, 18, 100});
  const polygon b = polygon::from_rect({18, 0, 36, 100});
  std::vector<violation> out;
  check_spacing(a, b, 20, 18, out, g_stats);
  EXPECT_TRUE(out.empty());
}

TEST(CheckSpacingNotch, UShape) {
  // U-shape with an 8-wide notch between the arms (arms 10 wide, 40 tall).
  polygon u{{{0, 0}, {0, 40}, {10, 40}, {10, 10}, {18, 10}, {18, 40}, {28, 40}, {28, 0}}};
  ASSERT_TRUE(u.is_clockwise());
  std::vector<violation> out;
  check_spacing_notch(u, 19, 18, out, g_stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].measured, 64);  // 8^2
  out.clear();
  check_spacing_notch(u, 19, 8, out, g_stats);
  EXPECT_TRUE(out.empty());  // notch exactly at min space
}

TEST(CheckSpacingNotch, RectangleHasNoNotches) {
  std::vector<violation> out;
  check_spacing_notch(polygon::from_rect({0, 0, 18, 100}), 19, 18, out, g_stats);
  EXPECT_TRUE(out.empty());
}

TEST(CheckEnclosure, FullyContainedWithMargins) {
  const polygon via = polygon::from_rect({5, 5, 13, 13});
  const polygon metal = polygon::from_rect({0, 0, 18, 18});
  std::vector<violation> out;
  EXPECT_TRUE(check_enclosure(via, metal, 21, 19, 5, out, g_stats));
  EXPECT_TRUE(out.empty());  // margin exactly 5 everywhere
  // Tighter rule: all four sides violate.
  EXPECT_TRUE(check_enclosure(via, metal, 21, 19, 6, out, g_stats));
  EXPECT_EQ(out.size(), 4u);
}

TEST(CheckEnclosure, OffCenterVia) {
  const polygon via = polygon::from_rect({1, 5, 9, 13});
  const polygon metal = polygon::from_rect({0, 0, 18, 18});
  std::vector<violation> out;
  EXPECT_TRUE(check_enclosure(via, metal, 21, 19, 5, out, g_stats));
  ASSERT_EQ(out.size(), 1u);  // left margin 1
  EXPECT_EQ(out[0].measured, 1);
}

TEST(CheckEnclosure, NotContainedReturnsFalse) {
  const polygon via = polygon::from_rect({15, 5, 23, 13});  // sticks out right
  const polygon metal = polygon::from_rect({0, 0, 18, 18});
  std::vector<violation> out;
  EXPECT_FALSE(check_enclosure(via, metal, 21, 19, 5, out, g_stats));
}

TEST(CheckEnclosure, ContainmentInLShapedMetal) {
  polygon metal{{{0, 0}, {0, 100}, {30, 100}, {30, 30}, {100, 30}, {100, 0}}};
  const polygon via_in_leg = polygon::from_rect({10, 50, 18, 58});
  const polygon via_in_notch = polygon::from_rect({50, 50, 58, 58});
  std::vector<violation> out;
  EXPECT_TRUE(check_enclosure(via_in_leg, metal, 21, 19, 5, out, g_stats));
  EXPECT_FALSE(check_enclosure(via_in_notch, metal, 21, 19, 5, out, g_stats));
}

TEST(ReportUncontained, EmitsNegativeMeasure) {
  std::vector<violation> out;
  report_uncontained(polygon::from_rect({0, 0, 8, 8}), 21, 19, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, rule_kind::enclosure);
  EXPECT_EQ(out[0].measured, -1);
}

TEST(CheckStats, CountsAccumulate) {
  check_stats s;
  std::vector<violation> out;
  check_width(polygon::from_rect({0, 0, 18, 100}), 19, 18, out, s);
  EXPECT_EQ(s.polygons_tested, 1u);
  EXPECT_EQ(s.edge_pairs_tested, 6u);  // C(4,2)
  check_spacing(polygon::from_rect({0, 0, 18, 100}), polygon::from_rect({40, 0, 58, 100}), 19,
                18, out, s);
  EXPECT_EQ(s.polygon_pairs_tested, 1u);
  EXPECT_EQ(s.edge_pairs_tested, 6u + 16u);
  check_stats t;
  t += s;
  EXPECT_EQ(t.edge_pairs_tested, s.edge_pairs_tested);
}

TEST(CheckArea, GiantPolygonIsNotFlaggedTooSmall) {
  // Regression: a polygon whose true area exceeds area_t used to wrap to a
  // negative shoelace sum and be reported as violating any minimum-area
  // rule. With saturation it reports the maximum area and passes.
  const coord_t m = std::numeric_limits<coord_t>::max() - 1;
  std::vector<violation> out;
  check_stats s;
  check_area(polygon::from_rect({-m, -m, m, m}), 19, 1000, out, s);
  EXPECT_TRUE(out.empty());
}

TEST(CheckArea, SmallPolygonStillFlagged) {
  std::vector<violation> out;
  check_stats s;
  check_area(polygon::from_rect({0, 0, 10, 10}), 19, 1000, out, s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].measured, 100);
}

}  // namespace
}  // namespace odrc::checks
