// Geometry edge cases for the check drivers: comb polygons (many teeth,
// many notches), staircases (no facing pairs at all), long snakes, and the
// interaction of width and notch semantics on one shape.
#include <gtest/gtest.h>

#include "checks/poly_checks.hpp"

namespace odrc::checks {
namespace {

check_stats g_stats;

// A comb with `teeth` upward teeth: tooth width 18, gap `gap`, spine 18.
polygon comb(int teeth, coord_t gap, coord_t tooth_w = 18, coord_t tooth_h = 60) {
  std::vector<point> pts;
  const coord_t pitch = tooth_w + gap;
  const coord_t spine_top = 18;
  pts.push_back({0, 0});
  pts.push_back({0, static_cast<coord_t>(spine_top + tooth_h)});
  for (int i = 0; i < teeth; ++i) {
    const coord_t x0 = static_cast<coord_t>(i * pitch);
    const coord_t x1 = static_cast<coord_t>(x0 + tooth_w);
    if (i > 0) {
      pts.push_back({x0, spine_top});
      pts.push_back({x0, static_cast<coord_t>(spine_top + tooth_h)});
    }
    pts.push_back({x1, static_cast<coord_t>(spine_top + tooth_h)});
    if (i + 1 < teeth) {
      pts.push_back({x1, spine_top});
    }
  }
  const coord_t right = static_cast<coord_t>((teeth - 1) * pitch + tooth_w);
  pts.push_back({right, 0});
  polygon p{std::move(pts)};
  p.make_clockwise();
  return p;
}

TEST(PolyEdgeCases, CombNotchesCountTeethGaps) {
  // 5 teeth with 10-gaps: 4 notches violate spacing 18.
  polygon c = comb(5, 10);
  ASSERT_TRUE(c.is_rectilinear());
  std::vector<violation> out;
  check_spacing_notch(c, 1, 18, out, g_stats);
  EXPECT_EQ(out.size(), 4u);
  for (const violation& v : out) EXPECT_EQ(v.measured, 100);

  // Compliant gaps produce nothing.
  out.clear();
  check_spacing_notch(comb(5, 18), 1, 18, out, g_stats);
  EXPECT_TRUE(out.empty());
}

TEST(PolyEdgeCases, CombWidthChecksTeeth) {
  // Teeth 10 wide violate width 18 (one per tooth); the spine is long enough
  // to pass.
  polygon c = comb(4, 30, /*tooth_w=*/10);
  std::vector<violation> out;
  check_width(c, 1, 18, out, g_stats);
  EXPECT_EQ(out.size(), 4u);
}

TEST(PolyEdgeCases, StaircaseHasNoFacingPairs) {
  // A 6-step staircase, each step 50x50: every interior span is 50, and no
  // exterior-facing pair exists.
  std::vector<point> pts;
  constexpr coord_t s = 50;
  constexpr int steps = 6;
  pts.push_back({0, 0});
  for (int i = 0; i < steps; ++i) {
    pts.push_back({static_cast<coord_t>(i * s), static_cast<coord_t>((i + 1) * s)});
    pts.push_back({static_cast<coord_t>((i + 1) * s), static_cast<coord_t>((i + 1) * s)});
  }
  pts.push_back({static_cast<coord_t>(steps * s), 0});
  polygon stair{std::move(pts)};
  stair.make_clockwise();
  ASSERT_TRUE(stair.is_rectilinear());

  std::vector<violation> out;
  check_width(stair, 1, 50, out, g_stats);
  EXPECT_TRUE(out.empty()) << "50-wide steps must pass w=50";
  check_width(stair, 1, 51, out, g_stats);
  EXPECT_FALSE(out.empty()) << "w=51 must flag the steps";
  out.clear();
  check_spacing_notch(stair, 1, 200, out, g_stats);
  EXPECT_TRUE(out.empty()) << "a staircase has no notches";
}

TEST(PolyEdgeCases, SnakeWidthAndNotch) {
  // An S-shaped snake wire, 18 wide everywhere, with a 20 gap between its
  // two horizontal runs: clean at s=18/w=18, the notch trips s=24.
  polygon snake{{{0, 0},
                 {0, 18},
                 {82, 18},
                 {82, 38},
                 {0, 38},
                 {0, 56},
                 {100, 56},
                 {100, 0}}};
  snake.make_clockwise();
  ASSERT_TRUE(snake.is_rectilinear());
  std::vector<violation> out;
  check_width(snake, 1, 18, out, g_stats);
  EXPECT_TRUE(out.empty());
  check_spacing_notch(snake, 1, 18, out, g_stats);
  EXPECT_TRUE(out.empty());
  check_spacing_notch(snake, 1, 24, out, g_stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].measured, 400);
}

TEST(PolyEdgeCases, TinySquareAllChecks) {
  const polygon sq = polygon::from_rect({0, 0, 1, 1});
  std::vector<violation> out;
  check_width(sq, 1, 18, out, g_stats);
  EXPECT_EQ(out.size(), 2u);  // both axes below minimum
  out.clear();
  check_area(sq, 1, 2, out, g_stats);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  check_spacing_notch(sq, 1, 100, out, g_stats);
  EXPECT_TRUE(out.empty());
}

TEST(PolyEdgeCases, EnclosureOfLShapedViaByLShapedMetal) {
  // Both shapes L-shaped, via inset by exactly 5 along every edge.
  polygon metal{{{0, 0}, {0, 100}, {30, 100}, {30, 40}, {90, 40}, {90, 0}}};
  polygon via{{{5, 5}, {5, 95}, {25, 95}, {25, 35}, {85, 35}, {85, 5}}};
  metal.make_clockwise();
  via.make_clockwise();
  std::vector<violation> out;
  EXPECT_TRUE(check_enclosure(via, metal, 2, 1, 5, out, g_stats));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(check_enclosure(via, metal, 2, 1, 6, out, g_stats));
  EXPECT_FALSE(out.empty());  // every facing pair is at exactly 5 < 6
}

}  // namespace
}  // namespace odrc::checks
