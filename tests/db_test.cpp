// Layout database tests: library/cell bookkeeping, topological order, the
// layer-wise MBR hierarchy and its query pruning.
#include "db/layout.hpp"

#include <gtest/gtest.h>

#include "db/mbr_index.hpp"

namespace odrc::db {
namespace {

// Small three-level library:
//   leafA: one polygon on layer 1 ([0,0..10,10])
//   leafB: polygons on layers 1 and 2
//   mid:   refs leafA at (100, 0), leafB rotated 90 at (0, 100)
//   top:   refs mid at (0,0) and an AREF of leafA 3x2 at (1000, 1000), step (50, 40)
struct fixture {
  library lib;
  cell_id leaf_a, leaf_b, mid, top;

  fixture() {
    leaf_a = lib.add_cell("leafA");
    lib.at(leaf_a).add_rect(1, {0, 0, 10, 10});
    leaf_b = lib.add_cell("leafB");
    lib.at(leaf_b).add_rect(1, {0, 0, 4, 4});
    lib.at(leaf_b).add_rect(2, {0, 0, 20, 2});
    mid = lib.add_cell("mid");
    lib.at(mid).add_ref({leaf_a, transform{{100, 0}, 0, false, 1}});
    lib.at(mid).add_ref({leaf_b, transform{{0, 100}, 1, false, 1}});
    top = lib.add_cell("top");
    lib.at(top).add_ref({mid, transform{}});
    cell_array a;
    a.target = leaf_a;
    a.trans.offset = {1000, 1000};
    a.cols = 3;
    a.rows = 2;
    a.col_step = {50, 0};
    a.row_step = {0, 40};
    lib.at(top).add_array(a);
  }
};

TEST(Library, AddAndFind) {
  fixture f;
  EXPECT_EQ(f.lib.cell_count(), 4u);
  EXPECT_EQ(f.lib.find("mid"), f.mid);
  EXPECT_FALSE(f.lib.find("nope").has_value());
  EXPECT_THROW(f.lib.add_cell("mid"), std::invalid_argument);
}

TEST(Library, TopCells) {
  fixture f;
  const auto tops = f.lib.top_cells();
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_EQ(tops[0], f.top);
}

TEST(Library, TopologicalOrder) {
  fixture f;
  const auto order = f.lib.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[f.leaf_a], pos[f.mid]);
  EXPECT_LT(pos[f.leaf_b], pos[f.mid]);
  EXPECT_LT(pos[f.mid], pos[f.top]);
}

TEST(Library, CycleDetection) {
  library lib;
  const cell_id a = lib.add_cell("a");
  const cell_id b = lib.add_cell("b");
  lib.at(a).add_ref({b, transform{}});
  lib.at(b).add_ref({a, transform{}});
  EXPECT_THROW(lib.topological_order(), std::runtime_error);
}

TEST(Library, HierarchyDepth) {
  fixture f;
  EXPECT_EQ(f.lib.hierarchy_depth(), 3u);  // top -> mid -> leaf
  library flat;
  const cell_id only = flat.add_cell("only");
  flat.at(only).add_rect(1, {0, 0, 1, 1});
  EXPECT_EQ(flat.hierarchy_depth(), 1u);
}

TEST(Library, ExpandedPolygonCount) {
  fixture f;
  // top: mid (leafA 1 + leafB 2) + AREF 3*2 of leafA (1 poly) = 3 + 6 = 9.
  EXPECT_EQ(f.lib.expanded_polygon_count(), 9u);
}

TEST(Cell, InstanceCountAndLeaf) {
  fixture f;
  EXPECT_TRUE(f.lib.at(f.leaf_a).leaf());
  EXPECT_FALSE(f.lib.at(f.top).leaf());
  EXPECT_EQ(f.lib.at(f.top).instance_count(), 1u + 6u);
}

TEST(CellArray, InstanceTransforms) {
  cell_array a;
  a.trans.offset = {10, 20};
  a.cols = 3;
  a.rows = 2;
  a.col_step = {5, 0};
  a.row_step = {0, 7};
  EXPECT_EQ(a.count(), 6u);
  EXPECT_EQ(a.instance(0, 0).offset, (point{10, 20}));
  EXPECT_EQ(a.instance(2, 1).offset, (point{20, 27}));
}

// ---------------------------------------------------------------------------
// mbr_index
// ---------------------------------------------------------------------------

TEST(MbrIndex, LayersDiscovered) {
  fixture f;
  const mbr_index idx(f.lib);
  EXPECT_EQ(idx.layers(), (std::vector<layer_t>{1, 2}));
}

TEST(MbrIndex, LeafMbrs) {
  fixture f;
  const mbr_index idx(f.lib);
  EXPECT_EQ(idx.cell_mbr(f.leaf_a, 1), (rect{0, 0, 10, 10}));
  EXPECT_TRUE(idx.cell_mbr(f.leaf_a, 2).empty());
  EXPECT_EQ(idx.cell_mbr(f.leaf_b, 2), (rect{0, 0, 20, 2}));
}

TEST(MbrIndex, TransformedChildMbrsFold) {
  fixture f;
  const mbr_index idx(f.lib);
  // mid layer 1: leafA at (100,0) -> [100..110, 0..10]; leafB rotated 90 at
  // (0,100): leafB L1 [0..4]^2 -> rotated [-4..0, 0..4] + (0,100).
  EXPECT_EQ(idx.cell_mbr(f.mid, 1), (rect{-4, 0, 110, 104}));
  // mid layer 2: leafB L2 [0..20, 0..2] rotated 90 -> [-2..0, 0..20] + (0,100).
  EXPECT_EQ(idx.cell_mbr(f.mid, 2), (rect{-2, 100, 0, 120}));
  // top layer 1 includes the AREF extent: instances span x 1000..1110+10,
  // y 1000..1040+10.
  const rect t1 = idx.cell_mbr(f.top, 1);
  EXPECT_EQ(t1.x_max, 1110);
  EXPECT_EQ(t1.y_max, 1050);
  EXPECT_EQ(t1.x_min, -4);
}

TEST(MbrIndex, HasLayerReflectsTransitiveContent) {
  fixture f;
  const mbr_index idx(f.lib);
  EXPECT_TRUE(idx.cell_has_layer(f.top, 2));
  EXPECT_FALSE(idx.cell_has_layer(f.leaf_a, 2));
}

TEST(MbrIndex, InvertedIndexListsDefinitions) {
  fixture f;
  const mbr_index idx(f.lib);
  const auto& on1 = idx.elements_on_layer(1);
  // Definitions, not instances: leafA's one polygon + leafB's one on L1.
  ASSERT_EQ(on1.size(), 2u);
  EXPECT_TRUE(idx.elements_on_layer(99).empty());
}

TEST(MbrIndex, ChildrenOnLayerPrunes) {
  fixture f;
  const mbr_index idx(f.lib);
  // mid's children on layer 2: only the leafB ref (index 1).
  const auto& kids = idx.children_on_layer(f.mid, 2);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids[0], 1u);
  // On layer 1 both children matter.
  EXPECT_EQ(idx.children_on_layer(f.mid, 1).size(), 2u);
}

TEST(MbrIndex, WindowQueryFindsInstances) {
  fixture f;
  const mbr_index idx(f.lib);
  std::vector<layer_hit> hits;
  const rect everywhere{-100000, -100000, 100000, 100000};
  idx.query(f.top, 1, everywhere, [&](const layer_hit& h) { hits.push_back(h); });
  // 1 (leafA in mid) + 1 (leafB L1 in mid) + 6 (AREF) = 8 instances.
  EXPECT_EQ(hits.size(), 8u);
}

TEST(MbrIndex, WindowQueryPrunesByMbr) {
  fixture f;
  const mbr_index idx(f.lib);
  std::vector<layer_hit> hits;
  // Window covering only the AREF region.
  const std::uint64_t visited_pruned = idx.query(f.top, 1, rect{990, 990, 1200, 1100},
                                                 [&](const layer_hit& h) { hits.push_back(h); });
  EXPECT_EQ(hits.size(), 6u);

  hits.clear();
  const std::uint64_t visited_full = idx.query(f.top, 1, rect{-100000, -100000, 100000, 100000},
                                               [&](const layer_hit& h) { hits.push_back(h); });
  EXPECT_EQ(hits.size(), 8u);
  EXPECT_GE(visited_full, visited_pruned);
}

TEST(MbrIndex, QueryTransformsCompose) {
  fixture f;
  const mbr_index idx(f.lib);
  std::vector<layer_hit> hits;
  idx.query(f.top, 2, rect{-100000, -100000, 100000, 100000},
            [&](const layer_hit& h) { hits.push_back(h); });
  ASSERT_EQ(hits.size(), 1u);
  // leafB's L2 polygon seen through mid's rotation.
  const rect m = hits[0].to_top.apply(rect{0, 0, 20, 2});
  EXPECT_EQ(m, (rect{-2, 100, 0, 120}));
}

TEST(MbrIndex, DanglingReferenceThrows) {
  library lib;
  const cell_id a = lib.add_cell("a");
  lib.at(a).add_ref({static_cast<cell_id>(42), transform{}});
  EXPECT_THROW(lib.topological_order(), std::runtime_error);
}

}  // namespace
}  // namespace odrc::db
