// Wire-protocol framing tests for odrc::serve: header round trips, the
// incremental frame_reader, and the edge cases a hostile or broken client can
// produce — truncated headers, oversized lengths, garbage magic.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

namespace odrc::serve {
namespace {

frame make_frame(msg_type t, std::uint16_t seq, std::uint32_t session, std::string payload) {
  frame f;
  f.header.type = static_cast<std::uint8_t>(t);
  f.header.seq = seq;
  f.header.session = session;
  f.payload = std::move(payload);
  return f;
}

TEST(ServeProtocol, HeaderRoundTrip) {
  frame_header h;
  h.type = static_cast<std::uint8_t>(msg_type::recheck);
  h.seq = 0xBEEF;
  h.session = 0xA1B2C3D4u;
  h.length = 12345;
  unsigned char wire[header_size];
  encode_header(h, wire);
  const frame_header back = decode_header(wire);
  EXPECT_EQ(back.magic, protocol_magic);
  EXPECT_EQ(back.version, protocol_version);
  EXPECT_EQ(back.type, h.type);
  EXPECT_EQ(back.seq, h.seq);
  EXPECT_EQ(back.session, h.session);
  EXPECT_EQ(back.length, h.length);
}

TEST(ServeProtocol, WireIsLittleEndian) {
  frame_header h;
  h.length = 0x01020304u;
  unsigned char wire[header_size];
  encode_header(h, wire);
  // magic "ODRC" = 0x4352444F little-endian -> bytes O D R C.
  EXPECT_EQ(wire[0], 'O');
  EXPECT_EQ(wire[1], 'D');
  EXPECT_EQ(wire[2], 'R');
  EXPECT_EQ(wire[3], 'C');
  EXPECT_EQ(wire[12], 0x04);
  EXPECT_EQ(wire[15], 0x01);
}

TEST(ServeProtocol, BadMagicThrows) {
  unsigned char wire[header_size] = {};
  encode_header(frame_header{}, wire);
  wire[0] = 'X';
  EXPECT_THROW((void)decode_header(wire), protocol_error);
}

TEST(ServeProtocol, VersionMismatchThrows) {
  unsigned char wire[header_size];
  frame_header h;
  encode_header(h, wire);
  wire[4] = protocol_version + 1;
  EXPECT_THROW((void)decode_header(wire), protocol_error);
}

TEST(ServeProtocol, OversizedLengthThrows) {
  frame_header h;
  h.length = max_payload_bytes + 1;
  unsigned char wire[header_size];
  encode_header(h, wire);
  EXPECT_THROW((void)decode_header(wire), protocol_error);
  frame f;
  f.payload.assign(16, 'x');
  f.header.length = 16;
  EXPECT_NO_THROW((void)encode_frame(f));
}

TEST(ServeProtocol, FrameReaderReassemblesByteByByte) {
  const frame a = make_frame(msg_type::edit, 7, 3, "add_poly top 19 0 0 10 10\n");
  const frame b = make_frame(msg_type::ping, 8, 3, "");
  const std::string wire = encode_frame(a) + encode_frame(b);

  frame_reader rd;
  std::vector<frame> out;
  for (const char c : wire) rd.feed(&c, 1, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].header.seq, 7);
  EXPECT_EQ(out[0].payload, a.payload);
  EXPECT_EQ(out[1].header.seq, 8);
  EXPECT_TRUE(out[1].payload.empty());
  EXPECT_EQ(rd.pending(), 0u);
}

TEST(ServeProtocol, FrameReaderKeepsPartialFrame) {
  const std::string wire = encode_frame(make_frame(msg_type::check, 1, 1, "hello"));
  frame_reader rd;
  std::vector<frame> out;
  rd.feed(wire.data(), wire.size() - 2, out);
  EXPECT_TRUE(out.empty());
  EXPECT_GT(rd.pending(), 0u);
  rd.feed(wire.data() + wire.size() - 2, 2, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "hello");
}

TEST(ServeProtocol, FrameReaderThrowsOnGarbage) {
  frame_reader rd;
  std::vector<frame> out;
  const char garbage[header_size] = {'n', 'o', 'p', 'e'};
  EXPECT_THROW(rd.feed(garbage, sizeof garbage, out), protocol_error);
}

// fd-level tests run over a socketpair: the writer side plays the client.
struct ServeProtocolFd : ::testing::Test {
  int a = -1, b = -1;
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  void TearDown() override {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST_F(ServeProtocolFd, RoundTripOverSocket) {
  const frame f = make_frame(msg_type::stats, 42, 9, "payload body");
  ASSERT_TRUE(write_frame(a, f));
  const auto got = read_frame(b);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header.seq, 42);
  EXPECT_EQ(got->header.session, 9u);
  EXPECT_EQ(got->payload, "payload body");
}

TEST_F(ServeProtocolFd, CleanEofReturnsNullopt) {
  ::close(a);
  a = -1;
  EXPECT_FALSE(read_frame(b).has_value());
}

TEST_F(ServeProtocolFd, TruncatedHeaderReturnsNullopt) {
  unsigned char wire[header_size];
  encode_header(frame_header{}, wire);
  ASSERT_TRUE(write_all(a, wire, 7));  // half a header, then hang up
  ::close(a);
  a = -1;
  EXPECT_FALSE(read_frame(b).has_value());
}

TEST_F(ServeProtocolFd, TruncatedPayloadReturnsNullopt) {
  const std::string wire = encode_frame(make_frame(msg_type::edit, 1, 1, "0123456789"));
  ASSERT_TRUE(write_all(a, wire.data(), wire.size() - 4));
  ::close(a);
  a = -1;
  EXPECT_FALSE(read_frame(b).has_value());
}

TEST_F(ServeProtocolFd, OversizedLengthOnWireThrows) {
  frame_header h;
  h.length = max_payload_bytes + 7;
  unsigned char wire[header_size];
  encode_header(h, wire);
  ASSERT_TRUE(write_all(a, wire, header_size));
  EXPECT_THROW((void)read_frame(b), protocol_error);
}

TEST(ServeProtocol, MakeResponseEchoesAndMarks) {
  const frame req = make_frame(msg_type::check, 11, 5, "");
  const frame resp = make_response(req, "ok total 0");
  EXPECT_EQ(resp.header.seq, req.header.seq);
  EXPECT_EQ(resp.header.session, req.header.session);
  EXPECT_EQ(resp.header.type, req.header.type | response_bit);
  EXPECT_EQ(resp.payload, "ok total 0");
}

}  // namespace
}  // namespace odrc::serve
