#include "db/flatten.hpp"

#include <gtest/gtest.h>

#include "db/mbr_index.hpp"

namespace odrc::db {
namespace {

struct fixture {
  library lib;
  cell_id leaf, mid, top;

  fixture() {
    leaf = lib.add_cell("leaf");
    lib.at(leaf).add_rect(1, {0, 0, 10, 4});
    lib.at(leaf).add_rect(2, {0, 0, 2, 2});
    mid = lib.add_cell("mid");
    lib.at(mid).add_ref({leaf, transform{{100, 0}, 0, false, 1}});
    lib.at(mid).add_rect(1, {0, 0, 5, 5});
    top = lib.add_cell("top");
    lib.at(top).add_ref({mid, transform{{0, 1000}, 0, false, 1}});
    // Mirrored leaf directly under top.
    lib.at(top).add_ref({leaf, transform{{0, 0}, 0, true, 1}});
  }
};

TEST(Flatten, LayerExpansion) {
  fixture f;
  const auto flat = flatten_layer(f.lib, f.top, 1);
  ASSERT_EQ(flat.size(), 3u);  // leaf-in-mid, mid's own, mirrored leaf
  rect all;
  for (const auto& fp : flat) all = all.join(fp.poly.mbr());
  EXPECT_EQ(all, (rect{0, -4, 110, 1005}));
  for (const auto& fp : flat) EXPECT_EQ(fp.layer, 1);
}

TEST(Flatten, MirroredGeometryStaysClockwise) {
  fixture f;
  for (const auto& fp : flatten_layer(f.lib, f.top, 1)) {
    EXPECT_TRUE(fp.poly.is_clockwise());
  }
}

TEST(Flatten, AllLayers) {
  fixture f;
  // leaf holds 2 polygons; mid = 1 own + 2 via the leaf ref; top = mid(3) +
  // the mirrored leaf(2) = 5 expanded polygons.
  const auto flat = flatten_all(f.lib, f.top);
  EXPECT_EQ(flat.size(), 5u);
  EXPECT_EQ(f.lib.expanded_polygon_count(), 5u);
}

TEST(Flatten, OriginTracksDefinition) {
  fixture f;
  const auto flat = flatten_layer(f.lib, f.top, 2);
  ASSERT_EQ(flat.size(), 2u);
  for (const auto& fp : flat) EXPECT_EQ(fp.origin.cell, f.leaf);
}

TEST(FlatInstanceList, OnlyCellsWithDirectPolygons) {
  fixture f;
  const auto insts = flat_instance_list(f.lib, f.top);
  // top has no direct polygons; leaf appears twice, mid once.
  ASSERT_EQ(insts.size(), 3u);
  int leafs = 0, mids = 0;
  for (const auto& pc : insts) {
    if (pc.master == f.leaf) ++leafs;
    if (pc.master == f.mid) ++mids;
  }
  EXPECT_EQ(leafs, 2);
  EXPECT_EQ(mids, 1);
}

TEST(FlatInstanceList, LayerFilteredUsesIndex) {
  fixture f;
  const mbr_index idx(f.lib);
  const auto on2 = flat_instance_list(idx, f.top, 2);
  ASSERT_EQ(on2.size(), 2u);  // only leaf instances carry layer 2
  for (const auto& pc : on2) EXPECT_EQ(pc.master, f.leaf);
  const auto on1 = flat_instance_list(idx, f.top, 1);
  EXPECT_EQ(on1.size(), 3u);
}

TEST(FlatInstanceList, ArrayExpansion) {
  library lib;
  const cell_id leaf = lib.add_cell("leaf");
  lib.at(leaf).add_rect(5, {0, 0, 1, 1});
  const cell_id top = lib.add_cell("top");
  cell_array a;
  a.target = leaf;
  a.cols = 4;
  a.rows = 3;
  a.col_step = {10, 0};
  a.row_step = {0, 20};
  lib.at(top).add_array(a);

  const auto flat = flatten_layer(lib, top, 5);
  EXPECT_EQ(flat.size(), 12u);
  rect all;
  for (const auto& fp : flat) all = all.join(fp.poly.mbr());
  EXPECT_EQ(all, (rect{0, 0, 31, 41}));
}

}  // namespace
}  // namespace odrc::db
