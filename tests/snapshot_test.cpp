// Tests for the deck-wide layout snapshot and the pack-ahead row pipeline.
// The snapshot (one shared mbr_index + view cache + memoized instance lists
// + master-local packed edges per check call) must be invisible in the
// results: every mode, mixed decks, multiple top cells, windowed region
// checks and concurrent execution report exactly what a per-group rebuild
// reports. The parallel branch's pack-ahead must be deterministic across
// pipeline depths (and worker counts — exercised by the PackAheadWorkers*
// ctest entries, since the global pool is sized once per process). The
// env-gated overlap test asserts the point of the pipeline: host packing of
// later rows overlapping the device wait of earlier rows.
#include "engine/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "infra/trace.hpp"
#include "workload/workload.hpp"

namespace odrc::engine {
namespace {

using workload::layers;
using workload::tech;

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

// A deck mixing pair rules (spacing, enclosure) with intra rules (width,
// area) so both the packed-edge cache and the per-master memo paths run.
std::vector<rules::rule> mixed_deck() {
  return {
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(tech::via_enclosure),
      rules::layer(layers::M1).width().greater_than(tech::wire_width),
      rules::layer(layers::M1).area().greater_than(tech::min_area),
  };
}

workload::design_spec base_spec() {
  workload::design_spec spec = workload::spec_for("uart", 0.3);
  spec.inject = {2, 2, 1, 1};
  return spec;
}

// The generated design plus a second top cell whose private master is placed
// in all eight orientations and magnified — the packed-master-edge cache has
// to reproduce every placement class from one master-local extraction.
db::library two_top_lib() {
  db::library lib = workload::generate(base_spec()).lib;

  const db::cell_id leaf = lib.add_cell("snap_leaf");
  lib.at(leaf).add_rect(layers::M1, {0, 0, 40, 10});
  db::polygon_elem notch;
  notch.layer = layers::M1;
  // Ring stored clockwise, as the db invariant requires.
  notch.poly = polygon({{0, 22}, {26, 22}, {26, 34}, {40, 34}, {40, 14}, {0, 14}});
  lib.at(leaf).add_polygon(std::move(notch));
  lib.at(leaf).add_rect(layers::M2, {0, 40, 30, 48});

  const db::cell_id extra = lib.add_cell("snap_extra_top");
  coord_t x = 0;
  for (std::uint16_t rot = 0; rot < 4; ++rot) {
    for (const bool refl : {false, true}) {
      lib.at(extra).add_ref({leaf, transform{{x, 0}, rot, refl, 1}});
      x += 120;
    }
  }
  lib.at(extra).add_ref({leaf, transform{{x, 0}, 0, false, 2}});

  // Deterministic violations local to the second top: a too-close M1 pair
  // and an off-center via.
  lib.at(extra).add_rect(layers::M1, {0, 200, 60, 218});
  lib.at(extra).add_rect(layers::M1, {0, 221, 60, 239});
  lib.at(extra).add_rect(layers::M1, {200, 200, 220, 220});
  lib.at(extra).add_rect(layers::V1, {201, 206, 209, 214});
  return lib;
}

// Snapshot on vs. off must agree rule-for-rule over the whole deck, in both
// modes, including the per-rule attribution of check_deck.
TEST(SnapshotEquivalence, MixedDeckMatchesPerGroupRebuild) {
  const db::library lib = two_top_lib();
  ASSERT_GE(lib.top_cells().size(), 2u);
  const std::vector<rules::rule> deck = mixed_deck();

  for (const mode m : {mode::sequential, mode::parallel}) {
    engine_config on;
    on.run_mode = m;
    on.snapshot = true;
    engine_config off = on;
    off.snapshot = false;

    drc_engine cached(on);
    cached.add_rules(deck);
    deck_report dr_on = cached.check_deck(lib);

    drc_engine rebuilt(off);
    rebuilt.add_rules(deck);
    deck_report dr_off = rebuilt.check_deck(lib);

    ASSERT_EQ(dr_on.per_rule.size(), deck.size());
    ASSERT_EQ(dr_off.per_rule.size(), deck.size());
    bool any = false;
    for (std::size_t i = 0; i < deck.size(); ++i) {
      EXPECT_EQ(norm(dr_on.per_rule[i].violations), norm(dr_off.per_rule[i].violations))
          << "mode=" << static_cast<int>(m) << " rule " << i;
      any = any || !dr_on.per_rule[i].violations.empty();
    }
    EXPECT_TRUE(any);
  }
}

// The second top cell is really checked through the snapshot: its injected
// violations are on top of the generated design's.
TEST(SnapshotEquivalence, SecondTopCellContributes) {
  const db::library base = workload::generate(base_spec()).lib;
  const db::library both = two_top_lib();

  engine_config cfg;
  cfg.snapshot = true;
  drc_engine e(cfg);
  e.add_rules({rules::layer(layers::M1).spacing().greater_than(tech::wire_space)});
  EXPECT_GT(e.check(both).violations.size(), e.check(base).violations.size());
}

// Windowed region checks go through the same shared index; on vs. off must
// agree under a window, for a pair rule and an enclosure rule, both modes.
TEST(SnapshotEquivalence, WindowedRegionCheckMatches) {
  const db::library lib = two_top_lib();
  const rect window{0, 0, 2500, 1500};
  const std::vector<rules::rule> probes = {
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(tech::via_enclosure),
  };

  for (const mode m : {mode::sequential, mode::parallel}) {
    for (const rules::rule& r : probes) {
      engine_config on;
      on.run_mode = m;
      on.snapshot = true;
      engine_config off = on;
      off.snapshot = false;

      drc_engine cached(on);
      drc_engine rebuilt(off);
      EXPECT_EQ(norm(cached.check_region(lib, r, window).violations),
                norm(rebuilt.check_region(lib, r, window).violations))
          << "mode=" << static_cast<int>(m);
    }
  }
}

// check_concurrent shares ONE snapshot across its group tasks; the shared
// cache must not change what the per-engine rebuild reports.
TEST(SnapshotEquivalence, ConcurrentSharesOneSnapshot) {
  const db::library lib = two_top_lib();
  const std::vector<rules::rule> deck = mixed_deck();

  for (const mode m : {mode::sequential, mode::parallel}) {
    engine_config on;
    on.run_mode = m;
    on.snapshot = true;
    engine_config off = on;
    off.snapshot = false;

    drc_engine shared(on);
    shared.add_rules(deck);
    const auto vs = norm(shared.check_concurrent(lib).violations);
    EXPECT_FALSE(vs.empty());

    drc_engine rebuilt(off);
    rebuilt.add_rules(deck);
    EXPECT_EQ(vs, norm(rebuilt.check_concurrent(lib).violations))
        << "mode=" << static_cast<int>(m);

    drc_engine serial(on);
    serial.add_rules(deck);
    EXPECT_EQ(vs, norm(serial.check(lib).violations)) << "mode=" << static_cast<int>(m);
  }
}

// Pack-ahead scheduling must be invisible: the parallel branch reports the
// same violations whatever the pipeline depth, and the same as sequential.
// The PackAheadWorkers1/PackAheadWorkers4 ctest entries re-run this suite
// with ODRC_WORKERS pinned, covering the worker-count axis.
TEST(PackAhead, DepthInvariant) {
  const db::library lib = two_top_lib();
  const std::vector<rules::rule> deck = mixed_deck();

  engine_config seq;
  seq.run_mode = mode::sequential;
  drc_engine ground(seq);
  ground.add_rules(deck);
  const auto expect = norm(ground.check(lib).violations);
  EXPECT_FALSE(expect.empty());

  for (const std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    engine_config cfg;
    cfg.run_mode = mode::parallel;
    cfg.pipeline_depth = depth;
    drc_engine e(cfg);
    e.add_rules(deck);
    EXPECT_EQ(norm(e.check(lib).violations), expect) << "depth=" << depth;
  }
}

// Every orientation class (4 rotations x reflection, plus magnification)
// through the packed-master-edge cache: the cached edges are extracted once
// in master space, so the per-instance transform replay must reproduce the
// from-scratch pack for reflected rings (where the edge direction flips).
TEST(PackAhead, ReflectedPlacementsMatchSequential) {
  db::library lib;
  const db::cell_id m = lib.add_cell("om");
  lib.at(m).add_rect(1, {0, 0, 30, 8});
  db::polygon_elem e;
  e.layer = 1;
  // Clockwise ring (db storage invariant).
  e.poly = polygon({{0, 20}, {20, 20}, {20, 30}, {30, 30}, {30, 12}, {0, 12}});
  lib.at(m).add_polygon(std::move(e));

  const db::cell_id top = lib.add_cell("otop");
  coord_t y = 0;
  for (std::uint16_t rot = 0; rot < 4; ++rot) {
    coord_t x = 0;
    for (const bool refl : {false, true}) {
      for (const coord_t mag : {1, 2}) {
        lib.at(top).add_ref({m, transform{{x, y}, rot, refl, mag}});
        x += 34 * mag;  // a few-dbu gap at mag 1: cross-instance violations
      }
    }
    y += 200;  // separate partition rows
  }

  const rules::rule r = rules::layer(1).spacing().greater_than(6);

  engine_config seq;
  seq.run_mode = mode::sequential;
  drc_engine ground(seq);
  const auto expect = norm(ground.check(lib, r).violations);
  EXPECT_FALSE(expect.empty());

  engine_config par;
  par.run_mode = mode::parallel;
  drc_engine cached(par);
  EXPECT_EQ(norm(cached.check(lib, r).violations), expect);

  engine_config par_off = par;
  par_off.snapshot = false;
  drc_engine rebuilt(par_off);
  EXPECT_EQ(norm(rebuilt.check(lib, r).violations), expect);
}

// --- trace-overlap acceptance --------------------------------------------

/// Closed [begin, end] intervals of spans named `name` in `cat`, per track.
std::map<std::uint32_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
named_intervals(const std::vector<trace::tagged_event>& events, const char* cat,
                const char* name) {
  std::map<std::uint32_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>> out;
  std::map<std::uint32_t, std::vector<std::uint64_t>> open;
  for (const trace::tagged_event& te : events) {
    if (std::strcmp(te.e.cat, cat) != 0 || std::strcmp(te.e.name, name) != 0) continue;
    if (te.e.k == trace::event::kind::begin) {
      open[te.tid].push_back(te.e.ts_ns);
    } else if (te.e.k == trace::event::kind::end && !open[te.tid].empty()) {
      out[te.tid].emplace_back(open[te.tid].back(), te.e.ts_ns);
      open[te.tid].pop_back();
    }
  }
  return out;
}

bool intervals_overlap(std::pair<std::uint64_t, std::uint64_t> a,
                       std::pair<std::uint64_t, std::uint64_t> b) {
  return std::max(a.first, b.first) < std::min(a.second, b.second);
}

// A wide deep pipeline on a slow simulated device must show at least two
// pack spans, on different host tracks, running concurrently with (and with
// each other during) a device_wait span — the Section V-C overlap the
// pack-ahead pipeline exists for. Timing-dependent, so it needs a pinned
// environment (ODRC_WORKERS=4, ODRC_DEVICE_GBPS=0.5) and retries; the
// pack_overlap_trace ctest entry provides both, everywhere else it skips.
TEST(PackAhead, OverlapShowsConcurrentPacks) {
  if (!std::getenv("ODRC_SNAPSHOT_OVERLAP_TEST")) {
    GTEST_SKIP() << "run via the pack_overlap_trace ctest entry "
                    "(needs ODRC_WORKERS=4 and a slow simulated device)";
  }

  // 24 partition rows x 24 instances x 144 polygons: ~14k edges per row,
  // several hundred microseconds of simulated transfer at 0.5 GB/s. The
  // deep lookahead (depth 8) floods the workers at the start of the row
  // loop, so several packs are still running when the driver first blocks
  // on the device.
  db::library lib;
  const db::cell_id m = lib.add_cell("gm");
  for (coord_t i = 0; i < 12; ++i) {
    for (coord_t j = 0; j < 12; ++j) {
      lib.at(m).add_rect(1, {i * 12, j * 12, i * 12 + 8, j * 12 + 8});
    }
  }
  const db::cell_id top = lib.add_cell("gtop");
  for (coord_t r = 0; r < 24; ++r) {
    for (coord_t c = 0; c < 24; ++c) {
      lib.at(top).add_ref({m, transform{{c * 150, r * 400}, 0, false, 1}});
    }
  }

  engine_config cfg;
  cfg.run_mode = mode::parallel;
  cfg.pipeline_depth = 8;
  drc_engine e(cfg);
  e.add_rules({rules::layer(1).spacing().greater_than(6),
               rules::layer(1).spacing().greater_than(4)});

  trace::recorder& rec = trace::recorder::instance();
  bool found = false;
  for (int attempt = 0; attempt < 8 && !found; ++attempt) {
    rec.enable();
    (void)e.check(lib);
    rec.disable();
    const std::vector<trace::tagged_event> events = rec.snapshot();
    const auto packs = named_intervals(events, "pipeline", "pack");
    const auto waits = named_intervals(events, "pipeline", "device_wait");

    // At least one device_wait span must be concurrent with two pack spans
    // on other tracks: the host keeps packing rows ahead while the driver
    // blocks on the device. (On a single hardware core the packs time-slice
    // rather than run simultaneously, so mutual pack/pack overlap is not
    // required — concurrency with the wait is the property the pipeline
    // guarantees.)
    for (const auto& [wt, wiv] : waits) {
      for (const auto& w : wiv) {
        std::size_t concurrent = 0;
        for (const auto& [pt, piv] : packs) {
          if (pt == wt) continue;
          for (const auto& p : piv) {
            if (intervals_overlap(p, w)) ++concurrent;
          }
        }
        found = found || concurrent >= 2;
      }
    }
  }
  EXPECT_TRUE(found) << "no device_wait span was overlapped by two pack-ahead spans";
}

}  // namespace
}  // namespace odrc::engine
