// SIMD layer tests (DESIGN.md §11): dispatcher resolution and CPUID-probe
// safety, primitive mask equivalence (scalar vs AVX2 on random inputs,
// including unaligned heads, short tails and INT32 extremes), and end-to-end
// scalar-vs-AVX2 equivalence of the three vectorized kernels — the brute
// executor, the parallel-sweep range scan, and the sequential sweepline's
// live-interval filter. The AVX2 halves skip themselves on machines without
// the instruction set; the scalar halves run everywhere.
#include "infra/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "checks/poly_checks.hpp"
#include "sweep/device_sweep.hpp"
#include "sweep/sweepline.hpp"

namespace odrc {
namespace {

// set_mode is process-wide; every test that flips it restores `automatic` so
// test order can't leak a forced tier.
struct mode_guard {
  ~mode_guard() { simd::set_mode(simd::mode::automatic); }
};

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ResolutionPrecedence) {
  using simd::mode;
  using simd::tier;
  // Explicit off always wins.
  EXPECT_EQ(simd::resolve(mode::off, std::nullopt, true), tier::scalar);
  EXPECT_EQ(simd::resolve(mode::off, mode::avx2, true), tier::scalar);
  // Explicit avx2 wins over the env but degrades without CPU support
  // (CPUID-probe safety: never dispatch an instruction set the CPU lacks).
  EXPECT_EQ(simd::resolve(mode::avx2, mode::off, true), tier::avx2);
  EXPECT_EQ(simd::resolve(mode::avx2, std::nullopt, false), tier::scalar);
  // Automatic defers to the env override, then the probe.
  EXPECT_EQ(simd::resolve(mode::automatic, mode::off, true), tier::scalar);
  EXPECT_EQ(simd::resolve(mode::automatic, mode::avx2, true), tier::avx2);
  EXPECT_EQ(simd::resolve(mode::automatic, mode::avx2, false), tier::scalar);
  EXPECT_EQ(simd::resolve(mode::automatic, std::nullopt, true), tier::avx2);
  EXPECT_EQ(simd::resolve(mode::automatic, std::nullopt, false), tier::scalar);
}

TEST(SimdDispatch, ParseMode) {
  using simd::mode;
  EXPECT_EQ(simd::parse_mode("off"), mode::off);
  EXPECT_EQ(simd::parse_mode("scalar"), mode::off);
  EXPECT_EQ(simd::parse_mode("avx2"), mode::avx2);
  EXPECT_EQ(simd::parse_mode("auto"), mode::automatic);
  EXPECT_EQ(simd::parse_mode(nullptr), std::nullopt);
  EXPECT_EQ(simd::parse_mode(""), std::nullopt);
  EXPECT_EQ(simd::parse_mode("avx512"), std::nullopt);
}

TEST(SimdDispatch, SetModeAndProbe) {
  mode_guard guard;
  simd::set_mode(simd::mode::off);
  EXPECT_EQ(simd::active(), simd::tier::scalar);
  simd::set_mode(simd::mode::avx2);
  // Forcing avx2 on a non-AVX2 CPU must fall back, not SIGILL.
  EXPECT_EQ(simd::active(),
            simd::cpu_has_avx2() ? simd::tier::avx2 : simd::tier::scalar);
  simd::set_mode(simd::mode::automatic);
  // With no env override, automatic follows the probe; with one, the
  // override. Either way the result is consistent with resolve().
  EXPECT_EQ(simd::active(), simd::resolve(simd::mode::automatic,
                                          simd::parse_mode(std::getenv("ODRC_SIMD")),
                                          simd::cpu_has_avx2()));
}

TEST(SimdDispatch, DescribeReportsTier) {
  const std::string line = simd::describe();
  EXPECT_NE(line.find("simd: "), std::string::npos);
  EXPECT_NE(line.find(simd::tier_name(simd::active())), std::string::npos);
  EXPECT_NE(line.find("cpu avx2="), std::string::npos);
}

TEST(SimdDispatch, PaddedSize) {
  EXPECT_EQ(simd::padded_size(0), 0u);
  EXPECT_EQ(simd::padded_size(1), 8u);
  EXPECT_EQ(simd::padded_size(8), 8u);
  EXPECT_EQ(simd::padded_size(9), 16u);
}

// ---------------------------------------------------------------------------
// Primitive masks
// ---------------------------------------------------------------------------

constexpr coord_t k_min = std::numeric_limits<coord_t>::min();
constexpr coord_t k_max = std::numeric_limits<coord_t>::max();

// Random padded SoA with a sprinkling of INT32-extreme and degenerate
// (zero-extent) boxes.
struct soa_fixture {
  std::vector<coord_t> store;
  simd::edge_soa soa;
  std::uint32_t n;

  soa_fixture(std::uint32_t count, std::uint32_t seed) : n(count) {
    const std::uint32_t padded = simd::padded_size(n);
    store.assign(static_cast<std::size_t>(padded) * 4, 0);
    coord_t* xl = store.data();
    coord_t* xh = xl + padded;
    coord_t* yl = xh + padded;
    coord_t* yh = yl + padded;
    std::mt19937 rng(seed);
    std::uniform_int_distribution<coord_t> pos(-1000, 1000);
    std::uniform_int_distribution<coord_t> ext(0, 50);  // 0 => degenerate box
    std::uniform_int_distribution<int> special(0, 19);
    for (std::uint32_t i = 0; i < n; ++i) {
      coord_t x = pos(rng), y = pos(rng);
      if (special(rng) == 0) x = (x & 1) ? k_max - ext(rng) : k_min + ext(rng);
      if (special(rng) == 1) y = (y & 1) ? k_max - ext(rng) : k_min + ext(rng);
      xl[i] = std::min(x, static_cast<coord_t>(std::max<std::int64_t>(
                              k_min, static_cast<std::int64_t>(x) - ext(rng))));
      xh[i] = x;
      yl[i] = std::min(y, static_cast<coord_t>(std::max<std::int64_t>(
                              k_min, static_cast<std::int64_t>(y) - ext(rng))));
      yh[i] = y;
    }
    for (std::uint32_t i = n; i < padded; ++i) {
      xl[i] = k_max;
      xh[i] = k_min;
      yl[i] = k_max;
      yh[i] = k_min;
    }
    soa = {xl, xh, yl, yh};
  }
};

TEST(SimdFilter, MaskMatchesScalarOnRandomBoxes) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  for (std::uint32_t seed = 0; seed < 8; ++seed) {
    soa_fixture fx(/*count=*/61, seed);  // 61 % 8 != 0: padded tail in play
    std::mt19937 rng(seed ^ 0xbeefu);
    std::uniform_int_distribution<coord_t> pos(-1200, 1200);
    for (int q = 0; q < 200; ++q) {
      const coord_t x = pos(rng), y = pos(rng);
      const simd::filter_bounds b = simd::make_bounds(x, x + 40, y, y + 40, 25);
      for (std::uint32_t base = 0; base < simd::padded_size(fx.n); base += 8) {
        EXPECT_EQ(simd::filter_mask8_avx2(fx.soa, base, b),
                  simd::filter_mask8_scalar(fx.soa, base, b))
            << "seed=" << seed << " base=" << base;
      }
    }
    // Extreme windows: saturated bounds must agree lane-for-lane too.
    for (const simd::filter_bounds& b :
         {simd::make_bounds(k_min, k_min + 10, k_min, k_min + 10, k_max),
          simd::make_bounds(k_max - 10, k_max, k_max - 10, k_max, k_max),
          simd::make_bounds(0, 0, 0, 0, 0)}) {
      for (std::uint32_t base = 0; base < simd::padded_size(fx.n); base += 8) {
        EXPECT_EQ(simd::filter_mask8_avx2(fx.soa, base, b),
                  simd::filter_mask8_scalar(fx.soa, base, b));
      }
    }
  }
}

TEST(SimdFilter, IntervalMaskMatchesScalar) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  std::mt19937 rng(7);
  std::uniform_int_distribution<coord_t> pos(-500, 500);
  std::vector<coord_t> lo(64), hi(64);
  for (std::size_t i = 0; i < 64; ++i) {
    const coord_t a = pos(rng), b = pos(rng);
    lo[i] = std::min(a, b);
    hi[i] = std::max(a, b);
  }
  lo[3] = k_min; hi[3] = k_min;  // degenerate at the extreme
  lo[11] = k_max; hi[11] = k_max;
  for (int q = 0; q < 500; ++q) {
    const coord_t a = pos(rng), b = pos(rng);
    const coord_t q_lo = std::min(a, b), q_hi = std::max(a, b);
    for (std::uint32_t base = 0; base < 64; base += 8) {
      EXPECT_EQ(simd::interval_mask8_avx2(lo.data(), hi.data(), base, q_lo, q_hi),
                simd::interval_mask8_scalar(lo.data(), hi.data(), base, q_lo, q_hi));
    }
  }
}

TEST(SimdFilter, ForCandidatesRespectsHeadAndTail) {
  soa_fixture fx(/*count=*/29, /*seed=*/1);
  // A window covering everything: the visitor must see exactly [begin, end).
  const simd::filter_bounds all{k_min, k_max, k_min, k_max};
  for (std::uint32_t begin : {0u, 1u, 3u, 8u, 13u}) {
    for (std::uint32_t end : {0u, 5u, 8u, 15u, 29u}) {
      if (begin > end) continue;
      std::vector<std::uint32_t> seen;
      std::uint64_t lanes = 0;
      simd::for_candidates(simd::tier::scalar, fx.soa, begin, end, all, lanes,
                           [&](std::uint32_t j) { seen.push_back(j); });
      std::vector<std::uint32_t> want(end - begin);
      std::iota(want.begin(), want.end(), begin);
      EXPECT_EQ(seen, want) << "begin=" << begin << " end=" << end;
      EXPECT_EQ(lanes, end - begin);
    }
  }
}

TEST(SimdFilter, RangeEndMatchesUpperBound) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<coord_t> step(0, 40);
  for (int round = 0; round < 20; ++round) {
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(rng() % 300);
    std::vector<coord_t> keys(simd::padded_size(n), k_max);
    coord_t v = -5000 + static_cast<coord_t>(rng() % 100);
    for (std::uint32_t i = 0; i < n; ++i) {
      v = static_cast<coord_t>(v + step(rng));
      keys[i] = v;
    }
    keys[0] = (round % 4 == 0) ? k_min : keys[0];
    if (round % 5 == 0) keys[n - 1] = k_max;
    std::uniform_int_distribution<coord_t> pick(keys[0], keys[n - 1]);
    for (int q = 0; q < 200; ++q) {
      const coord_t bound = (q % 50 == 0) ? k_max : (q % 50 == 1) ? k_min : pick(rng);
      for (std::uint32_t lo : {0u, 1u, n / 2, n}) {
        const auto expect = static_cast<std::uint32_t>(
            std::upper_bound(keys.begin() + lo, keys.begin() + n, bound) - keys.begin());
        EXPECT_EQ(simd::range_end_scalar(keys.data(), lo, n, bound), expect);
        EXPECT_EQ(simd::range_end(simd::tier::scalar, keys.data(), lo, n, bound), expect);
        if (simd::cpu_has_avx2()) {
          EXPECT_EQ(simd::range_end_avx2(keys.data(), lo, n, bound), expect)
              << "round=" << round << " lo=" << lo << " bound=" << bound;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end kernel equivalence: the device executors under forced tiers
// ---------------------------------------------------------------------------

device::stream& test_stream() {
  static device::stream s(device::context::instance());
  return s;
}

std::vector<checks::violation> run_tier(simd::mode m, std::span<const sweep::packed_edge> edges,
                                        const sweep::device_check_config& cfg,
                                        sweep::executor_choice choice) {
  simd::set_mode(m);
  std::vector<checks::violation> out;
  sweep::device_check_stats stats;
  sweep::device_check_edges_with(test_stream(), edges, cfg, choice, out, stats);
  checks::normalize_all(out);
  return out;
}

void expect_tier_equivalence(std::span<const sweep::packed_edge> edges,
                             const sweep::device_check_config& cfg) {
  if (!simd::cpu_has_avx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  mode_guard guard;
  for (auto choice : {sweep::executor_choice::brute, sweep::executor_choice::sweep}) {
    const auto scalar = run_tier(simd::mode::off, edges, cfg, choice);
    const auto vector = run_tier(simd::mode::avx2, edges, cfg, choice);
    EXPECT_EQ(scalar, vector) << "choice=" << static_cast<int>(choice)
                              << " kind=" << static_cast<int>(cfg.kind);
    EXPECT_FALSE(scalar.empty()) << "vacuous equivalence: fixture found no violations";
  }
}

std::vector<sweep::packed_edge> pack_rects(std::span<const rect> rs, std::uint16_t group = 0,
                                           std::uint32_t id_base = 0) {
  std::vector<sweep::packed_edge> edges;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    sweep::pack_polygon_edges(polygon::from_rect(rs[i]), id_base + static_cast<std::uint32_t>(i),
                              group, edges);
  }
  return edges;
}

std::vector<rect> random_soup(int n, std::uint32_t seed, coord_t span, coord_t base_x = 0,
                              coord_t base_y = 0) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::uniform_int_distribution<coord_t> size(1, 90);
  std::vector<rect> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const coord_t x = static_cast<coord_t>(base_x + pos(rng));
    const coord_t y = static_cast<coord_t>(base_y + pos(rng));
    out.push_back({x, y, static_cast<coord_t>(x + size(rng)), static_cast<coord_t>(y + size(rng))});
  }
  return out;
}

TEST(SimdEquivalence, SpacingRandomSoup) {
  for (std::uint32_t seed : {3u, 17u}) {
    // 57 rects -> 228 edges; 228 % 8 != 0 exercises tail lanes.
    const auto rs = random_soup(57, seed, 1500);
    const auto edges = pack_rects(rs);
    for (auto axis : {sweep::sweep_axis::y, sweep::sweep_axis::x}) {
      expect_tier_equivalence(edges, {sweep::pair_check::spacing, 18, 5, 5, axis});
    }
  }
}

TEST(SimdEquivalence, SpacingPrlTable) {
  const auto rs = random_soup(61, 23, 1200);
  auto edges = pack_rects(rs);
  checks::spacing_table table;
  table.count = 2;
  table.tiers[0] = {0, 18};
  table.tiers[1] = {120, 30};
  expect_tier_equivalence(
      edges, {sweep::pair_check::spacing, table.max_distance(), 5, 5, sweep::sweep_axis::y, table});
}

TEST(SimdEquivalence, WidthRandomBars) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<coord_t> w(4, 30);
  std::vector<rect> rs;
  for (int i = 0; i < 45; ++i) {
    const coord_t x = static_cast<coord_t>(i * 60);
    rs.push_back({x, 0, static_cast<coord_t>(x + w(rng)), 200});
  }
  expect_tier_equivalence(pack_rects(rs), {sweep::pair_check::width, 18, 5, 5});
}

TEST(SimdEquivalence, EnclosureRandomVias) {
  std::mt19937 rng(9);
  std::uniform_int_distribution<coord_t> off(0, 8);
  std::vector<sweep::packed_edge> edges;
  std::vector<rect> inner, outer;
  for (int i = 0; i < 40; ++i) {
    const coord_t x = static_cast<coord_t>(i * 80), y = static_cast<coord_t>((i % 7) * 90);
    inner.push_back({static_cast<coord_t>(x + 10), static_cast<coord_t>(y + 10),
                     static_cast<coord_t>(x + 20), static_cast<coord_t>(y + 20)});
    // Randomly tight outer rings: some violate the enclosure rule.
    outer.push_back({static_cast<coord_t>(x + 10 - off(rng)), static_cast<coord_t>(y + 10 - off(rng)),
                     static_cast<coord_t>(x + 20 + off(rng)), static_cast<coord_t>(y + 20 + off(rng))});
  }
  auto e0 = pack_rects(inner, /*group=*/0);
  auto e1 = pack_rects(outer, /*group=*/1, /*id_base=*/1000);
  e0.insert(e0.end(), e1.begin(), e1.end());
  expect_tier_equivalence(e0, {sweep::pair_check::enclosure, 5, 5, 6});
}

TEST(SimdEquivalence, TouchingAndDegenerate) {
  // Abutting rects (shared edges), zero-width slivers, duplicate rects.
  std::vector<rect> rs{
      {0, 0, 100, 100},   {100, 0, 200, 100},  // share a vertical edge
      {0, 100, 100, 200},                      // shares a horizontal edge
      {300, 0, 300, 50},                       // zero-width sliver
      {400, 0, 450, 0},                        // zero-height sliver
      {0, 0, 100, 100},                        // exact duplicate
      {500, 0, 517, 90},  {530, 0, 560, 90},   // near pair (violates 18)
  };
  expect_tier_equivalence(pack_rects(rs), {sweep::pair_check::spacing, 18, 5, 5});
}

TEST(SimdEquivalence, Int32ExtremeCoordinates) {
  // Clusters hugging the int32 corners: the filter bounds saturate instead
  // of wrapping, so both tiers must still agree (and find the violations).
  std::vector<rect> rs;
  auto cluster = [&rs](coord_t cx, coord_t cy) {
    rs.push_back({cx, cy, static_cast<coord_t>(cx + 20), static_cast<coord_t>(cy + 20)});
    rs.push_back({static_cast<coord_t>(cx + 30), cy, static_cast<coord_t>(cx + 45),
                  static_cast<coord_t>(cy + 20)});  // 10 apart: violates 18
  };
  cluster(k_max - 60, k_max - 40);
  cluster(k_min + 5, k_min + 5);
  cluster(k_max - 60, k_min + 5);
  cluster(0, 0);
  expect_tier_equivalence(pack_rects(rs), {sweep::pair_check::spacing, 18, 5, 5});
}

TEST(SimdEquivalence, OverflowRetryWithBatching) {
  // >256 violations forces the overflow-retry path under batched emission;
  // a dense grid of too-close rects generates thousands of hits.
  std::vector<rect> rs;
  for (int gx = 0; gx < 24; ++gx) {
    for (int gy = 0; gy < 24; ++gy) {
      const coord_t x = static_cast<coord_t>(gx * 25), y = static_cast<coord_t>(gy * 25);
      rs.push_back({x, y, static_cast<coord_t>(x + 15), static_cast<coord_t>(y + 15)});
    }
  }
  expect_tier_equivalence(pack_rects(rs), {sweep::pair_check::spacing, 18, 5, 5});
}

// ---------------------------------------------------------------------------
// Sequential sweepline: live-list vs interval tree, scalar vs AVX2
// ---------------------------------------------------------------------------

using pair_vec = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

pair_vec sweep_pairs(simd::mode m, std::span<const rect> rs, sweep::sweep_stats* stats = nullptr) {
  simd::set_mode(m);
  pair_vec out;
  sweep::overlap_pairs(rs, [&](std::uint32_t a, std::uint32_t b) { out.emplace_back(a, b); },
                       stats);
  return out;
}

pair_vec brute_pairs(std::span<const rect> rs) {
  pair_vec out;
  for (std::uint32_t i = 0; i < rs.size(); ++i) {
    if (rs[i].empty()) continue;
    for (std::uint32_t j = i + 1; j < rs.size(); ++j) {
      if (rs[j].empty()) continue;
      if (rs[i].x_min <= rs[j].x_max && rs[j].x_min <= rs[i].x_max &&
          rs[i].y_min <= rs[j].y_max && rs[j].y_min <= rs[i].y_max) {
        out.emplace_back(i, j);
      }
    }
  }
  return out;
}

TEST(SimdSweepline, LiveListMatchesBruteAndTiers) {
  mode_guard guard;
  for (std::uint32_t seed : {2u, 8u, 31u}) {
    const auto rs = random_soup(200, seed, 900);
    auto expected = brute_pairs(rs);
    auto scalar = sweep_pairs(simd::mode::off, rs);
    auto sorted_scalar = scalar;
    std::sort(sorted_scalar.begin(), sorted_scalar.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sorted_scalar, expected);
    if (simd::cpu_has_avx2()) {
      // Identical sequence, not just set: both tiers sort hits per event.
      EXPECT_EQ(sweep_pairs(simd::mode::avx2, rs), scalar);
    }
  }
}

TEST(SimdSweepline, FallbackToTreePastThreshold) {
  // >2048 simultaneously-live x-disjoint columns: the live list drains into
  // the interval tree mid-sweep; the reported pair set must be unaffected.
  mode_guard guard;
  std::vector<rect> rs;
  constexpr int cols = 2200;
  for (int i = 0; i < cols; ++i) {
    const coord_t x = static_cast<coord_t>(i * 10);
    rs.push_back({x, 0, static_cast<coord_t>(x + 4), 1000});  // disjoint columns
  }
  // A handful of wide straps crossing many columns near the bottom, so some
  // queries run against the tree after the fallback.
  rs.push_back({0, 990, 200, 1000});
  rs.push_back({5000, 995, 5500, 1000});

  sweep::sweep_stats stats;
  auto scalar = sweep_pairs(simd::mode::off, rs, &stats);
  EXPECT_GT(stats.max_live_intervals, 2048u);
  auto expected = brute_pairs(rs);
  auto sorted_scalar = scalar;
  std::sort(sorted_scalar.begin(), sorted_scalar.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted_scalar, expected);
  if (simd::cpu_has_avx2()) {
    EXPECT_EQ(sweep_pairs(simd::mode::avx2, rs), scalar);
  }
}

}  // namespace
}  // namespace odrc
