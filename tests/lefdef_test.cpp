// LEF/DEF adaptor tests: orientation semantics, the handwritten-file subset,
// writer round-trips, and the GDS-vs-LEF/DEF equivalence of a generated
// placement.
#include "lefdef/lefdef.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "db/flatten.hpp"
#include "engine/engine.hpp"
#include "workload/workload.hpp"

namespace odrc::lefdef {
namespace {

const layer_map kLayers{{"M1", 19}, {"V1", 21}, {"M2", 20}, {"M3", 30}, {"PWR", 18}};

// ---------------------------------------------------------------------------
// Orientations
// ---------------------------------------------------------------------------

TEST(Orientation, AllEightRoundTrip) {
  for (const char* name : {"N", "W", "S", "E", "FN", "FS", "FE", "FW"}) {
    const transform t = orientation_from_def(name);
    EXPECT_EQ(orientation_to_def(t), name) << name;
  }
  EXPECT_THROW((void)orientation_from_def("XX"), lefdef_error);
}

TEST(Orientation, LinearPartsMatchDefSemantics) {
  // DEF semantics about the origin: N identity, S is 180deg, FS mirrors
  // about the x-axis, FN mirrors about the y-axis.
  const point p{3, 5};
  EXPECT_EQ(orientation_from_def("N").apply(p), (point{3, 5}));
  EXPECT_EQ(orientation_from_def("S").apply(p), (point{-3, -5}));
  EXPECT_EQ(orientation_from_def("FS").apply(p), (point{3, -5}));
  EXPECT_EQ(orientation_from_def("FN").apply(p), (point{-3, 5}));
  EXPECT_EQ(orientation_from_def("W").apply(p), (point{-5, 3}));
  EXPECT_EQ(orientation_from_def("E").apply(p), (point{5, -3}));
}

// ---------------------------------------------------------------------------
// Readers on handwritten files
// ---------------------------------------------------------------------------

constexpr const char* kLef = R"(
VERSION 5.8 ;
UNITS
  DATABASE MICRONS 1000 ;
END UNITS

MACRO INVX1
  CLASS CORE ;
  ORIGIN 0 0 ;
  SIZE 0.054 BY 0.270 ;
  PIN A
    DIRECTION INPUT ;
    PORT
      LAYER M1 ;
      RECT 0.018 0.036 0.036 0.234 ;
    END
  END A
  OBS
    LAYER V1 ;
    RECT 0.023 0.131 0.031 0.139 ;
    LAYER M9 ;
    RECT 0 0 0.054 0.270 ;
  END
END INVX1

MACRO LCELL
  SIZE 0.108 BY 0.270 ;
  OBS
    LAYER M1 ;
    POLYGON 0.018 0.036 0.018 0.234 0.036 0.234 0.036 0.054 0.090 0.054 0.090 0.036 ;
  END
END LCELL
END LIBRARY
)";

constexpr const char* kDef = R"(
VERSION 5.8 ;
DESIGN testtop ;
UNITS DISTANCE MICRONS 1000 ;
DIEAREA ( 0 0 ) ( 1000 1000 ) ;
COMPONENTS 3 ;
- u0 INVX1 + PLACED ( 0 0 ) N ;
- u1 INVX1 + PLACED ( 100 0 ) FS ;
- u2 LCELL + FIXED ( 300 300 ) S ;
END COMPONENTS
END DESIGN
)";

TEST(LefReader, ParsesMacros) {
  std::istringstream in(kLef);
  db::library lib;
  EXPECT_EQ(read_lef(in, kLayers, lib), 2u);
  const db::cell& inv = lib.at(*lib.find("INVX1"));
  ASSERT_EQ(inv.polygons().size(), 2u);  // M1 pin rect + V1 obs; M9 unmapped
  EXPECT_EQ(inv.polygons()[0].layer, 19);
  EXPECT_EQ(inv.polygons()[0].poly.mbr(), (rect{18, 36, 36, 234}));
  EXPECT_EQ(inv.polygons()[1].layer, 21);
  EXPECT_EQ(inv.polygons()[1].poly.mbr(), (rect{23, 131, 31, 139}));

  const db::cell& lcell = lib.at(*lib.find("LCELL"));
  ASSERT_EQ(lcell.polygons().size(), 1u);
  EXPECT_EQ(lcell.polygons()[0].poly.size(), 6u);
  EXPECT_TRUE(lcell.polygons()[0].poly.is_clockwise());
  EXPECT_EQ(lcell.polygons()[0].poly.area(), 18 * 198 + 54 * 18);
}

TEST(DefReader, PlacementSemantics) {
  db::library lib;
  {
    std::istringstream in(kLef);
    read_lef(in, kLayers, lib);
  }
  std::istringstream in(kDef);
  const db::cell_id top = read_def(in, lib);
  EXPECT_EQ(lib.at(top).name(), "testtop");
  ASSERT_EQ(lib.at(top).refs().size(), 3u);

  // u0 at N (0,0): geometry unchanged.
  const auto flat = db::flatten_layer(lib, top, 19);
  rect u0;
  for (const auto& fp : flat) u0 = u0.join(fp.poly.mbr());
  // u1 FS at (100, 0): the INVX1 M1 rect [18..36, 36..234] mirrors about x
  // to [18..36, -234..-36]; the oriented bbox of the whole macro geometry
  // ([18..36, -234..-36] + V1 [...]) has min corner at (18, -234)... the
  // placement puts the oriented bbox lower-left at (100, 0), so the M1 rect
  // lands at x in [100, 118].
  bool found_u1 = false;
  for (const auto& fp : flat) {
    const rect m = fp.poly.mbr();
    if (m.x_min == 100) {
      found_u1 = true;
      // bbox spans y [-234,-36] oriented; shifted so min -> 0: y in [0, 198].
      EXPECT_EQ(m, (rect{100, 0, 118, 198}));
    }
  }
  EXPECT_TRUE(found_u1);
}

TEST(DefReader, ErrorsOnUnknownMacro) {
  db::library lib;
  std::istringstream in(
      "DESIGN t ;\nCOMPONENTS 1 ;\n- u0 GHOST + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN\n");
  EXPECT_THROW(read_def(in, lib), lefdef_error);
}

TEST(DefReader, ErrorsWithoutDesign) {
  db::library lib;
  std::istringstream in("VERSION 5.8 ;\n");
  EXPECT_THROW(read_def(in, lib), lefdef_error);
}

// ---------------------------------------------------------------------------
// Writers + full round trip
// ---------------------------------------------------------------------------

TEST(LefDefRoundTrip, GeneratedPlacementMatchesGdsPath) {
  // A placement-only design (no routing, no injections): the LEF/DEF path
  // must reproduce the exact flattened geometry of the original library.
  auto spec = workload::spec_for("uart", 0.6);
  spec.m2_tracks_per_row = 0;
  spec.m3_wires = 0;
  spec.via2_density = 0;
  const auto g = workload::generate(spec);
  const db::cell_id top = g.lib.top_cells().front();

  std::stringstream lef, def;
  write_lef(g.lib, kLayers, lef);
  write_def(g.lib, top, def);

  db::library back;
  read_lef(lef, kLayers, back);
  const db::cell_id back_top = read_def(def, back);

  // Same flattened polygon multiset per layer (compare sorted MBR lists; the
  // MBR of a rectilinear polygon plus its area pins the geometry well enough
  // for rect-and-L cells).
  for (const db::layer_t layer : {db::layer_t{19}, db::layer_t{21}, db::layer_t{18}}) {
    auto key = [](const db::flat_polygon& fp) {
      const rect m = fp.poly.mbr();
      return std::tuple{m.x_min, m.y_min, m.x_max, m.y_max, fp.poly.area()};
    };
    auto a = db::flatten_layer(g.lib, top, layer);
    auto b = db::flatten_layer(back, back_top, layer);
    ASSERT_EQ(a.size(), b.size()) << "layer " << layer;
    std::vector<decltype(key(a[0]))> ka, kb;
    for (const auto& fp : a) ka.push_back(key(fp));
    for (const auto& fp : b) kb.push_back(key(fp));
    std::sort(ka.begin(), ka.end());
    std::sort(kb.begin(), kb.end());
    EXPECT_EQ(ka, kb) << "layer " << layer;
  }

  // And the DRC engine agrees across both import paths.
  drc_engine e;
  auto va = e.run_spacing(g.lib, 19, 18).violations;
  auto vb = e.run_spacing(back, 19, 18).violations;
  checks::normalize_all(va);
  checks::normalize_all(vb);
  EXPECT_EQ(va, vb);
}

TEST(DefWriter, RejectsTopGeometry) {
  db::library lib;
  const db::cell_id m = lib.add_cell("m");
  lib.at(m).add_rect(1, {0, 0, 10, 10});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_ref({m, transform{}});
  lib.at(top).add_rect(1, {100, 100, 110, 110});
  std::ostringstream out;
  EXPECT_THROW(write_def(lib, top, out), lefdef_error);
  write_def(lib, top, out, 1000, /*ignore_top_geometry=*/true);
  EXPECT_NE(out.str().find("COMPONENTS 1"), std::string::npos);
}

}  // namespace
}  // namespace odrc::lefdef
