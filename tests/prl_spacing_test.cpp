// Conditional (parallel-run-length) spacing tests: the spacing_table
// predicate, its equivalence with the simple predicate for single tiers, and
// the engine paths (sequential, parallel, memoized) under tiered rules.
#include <gtest/gtest.h>

#include <random>

#include "checks/edge_checks.hpp"
#include "engine/engine.hpp"

namespace odrc {
namespace {

using checks::spacing_table;

TEST(SpacingTable, RequiredFollowsTiers) {
  spacing_table t = spacing_table::simple(18);
  t.add_tier(500, 24).add_tier(1500, 30);
  EXPECT_EQ(t.count, 3);
  EXPECT_EQ(t.required(0), 18);
  EXPECT_EQ(t.required(499), 18);
  EXPECT_EQ(t.required(500), 24);
  EXPECT_EQ(t.required(1499), 24);
  EXPECT_EQ(t.required(1500), 30);
  EXPECT_EQ(t.base(), 18);
  EXPECT_EQ(t.max_distance(), 30);
}

TEST(SpacingTable, Equality) {
  spacing_table a = spacing_table::simple(18);
  spacing_table b = spacing_table::simple(18);
  EXPECT_EQ(a, b);
  b.add_tier(100, 20);
  EXPECT_FALSE(a == b);
}

TEST(SpacingTable, SingleTierEquivalentToSimplePredicate) {
  // Property: check_space_pair_table with a one-tier table behaves exactly
  // like check_space_pair_any. Random axis-parallel edge soup.
  std::mt19937 rng(11);
  std::uniform_int_distribution<coord_t> pos(-200, 200);
  std::uniform_int_distribution<coord_t> len(1, 80);
  std::uniform_int_distribution<int> orient(0, 1), dir(0, 1), same(0, 1);
  const spacing_table table = spacing_table::simple(25);

  auto random_edge = [&] {
    const coord_t x = pos(rng), y = pos(rng), l = len(rng);
    edge e = orient(rng) ? edge{{x, y}, {static_cast<coord_t>(x + l), y}}
                         : edge{{x, y}, {x, static_cast<coord_t>(y + l)}};
    return dir(rng) ? e : e.reversed();
  };
  for (int i = 0; i < 5000; ++i) {
    const edge a = random_edge();
    const edge b = random_edge();
    const bool sp = same(rng) != 0;
    EXPECT_EQ(checks::check_space_pair_table(a, b, sp, table),
              checks::check_space_pair_any(a, b, sp, 25))
        << a << ' ' << b << " same=" << sp;
  }
}

TEST(SpacingTable, LongRunRequiresWiderGap) {
  // Facing pair with a 100-long run at gap 20: fine at base 18, violating
  // once the >=80-run tier demands 24.
  const edge top_shape_bottom{{100, 20}, {0, 20}};  // west: interior above
  const edge bot_shape_top{{0, 0}, {100, 0}};       // east: interior below
  const spacing_table base = spacing_table::simple(18);
  EXPECT_FALSE(checks::check_space_pair_table(top_shape_bottom, bot_shape_top, false, base)
                   .has_value());
  spacing_table tiered = spacing_table::simple(18);
  tiered.add_tier(80, 24);
  EXPECT_EQ(checks::check_space_pair_table(top_shape_bottom, bot_shape_top, false, tiered), 400);
  // A short run (projection 40 < 80) at the same gap stays legal.
  const edge short_top{{40, 20}, {0, 20}};
  EXPECT_FALSE(checks::check_space_pair_table(short_top, bot_shape_top, false, tiered)
                   .has_value());
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

// Two long wires at gap 20 and two short wires at gap 20.
db::library prl_fixture() {
  db::library lib;
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(1, {0, 0, 2000, 18});      // long wire
  lib.at(top).add_rect(1, {0, 38, 2000, 56});     // long wire, gap 20
  lib.at(top).add_rect(1, {5000, 0, 5060, 18});   // short wire
  lib.at(top).add_rect(1, {5000, 38, 5060, 56});  // short wire, gap 20
  return lib;
}

TEST(PrlSpacing, EngineFlagsOnlyLongRuns) {
  const db::library lib = prl_fixture();
  drc_engine e;
  // Base 18 is met everywhere; the 24-over-500 tier only bites the long pair.
  spacing_table t = spacing_table::simple(18);
  t.add_tier(500, 24);
  const auto r = e.run_spacing(lib, 1, t);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].measured, 400);
  EXPECT_LE(r.violations[0].e1.mbr().x_max, 2000);

  // Without the tier nothing violates.
  EXPECT_TRUE(e.run_spacing(lib, 1, 18).violations.empty());
}

TEST(PrlSpacing, RuleDslCarriesTiers) {
  const rules::rule r =
      rules::layer(1).spacing().greater_than(18).when_projection_over(500, 24).named("M1.S.PRL");
  EXPECT_EQ(r.spacing.count, 2);
  EXPECT_EQ(r.distance, 24);  // max distance drives pruning
  EXPECT_EQ(r.name, "M1.S.PRL");

  const db::library lib = prl_fixture();
  drc_engine e;
  const auto report = e.check(lib, r);
  EXPECT_EQ(report.violations.size(), 1u);
}

TEST(PrlSpacing, ParallelModeMatchesSequential) {
  const db::library lib = prl_fixture();
  spacing_table t = spacing_table::simple(18);
  t.add_tier(500, 24);
  drc_engine seq({.run_mode = engine::mode::sequential});
  drc_engine par({.run_mode = engine::mode::parallel});
  EXPECT_EQ(norm(seq.run_spacing(lib, 1, t).violations),
            norm(par.run_spacing(lib, 1, t).violations));
}

TEST(PrlSpacing, MemoizedPairsRespectTiers) {
  // Identical masters side by side: the memoized pair result must be
  // computed with the tiered table.
  db::library lib;
  const db::cell_id m = lib.add_cell("m");
  lib.at(m).add_rect(1, {0, 0, 1000, 18});
  const db::cell_id top = lib.add_cell("top");
  for (int i = 0; i < 4; ++i) {
    lib.at(top).add_ref({m, transform{{0, static_cast<coord_t>(i * 38)}, 0, false, 1}});
  }
  spacing_table t = spacing_table::simple(18);
  t.add_tier(500, 24);
  drc_engine e;
  const auto r = e.run_spacing(lib, 1, t);
  EXPECT_EQ(r.violations.size(), 3u);  // three adjacent long-run gaps of 20
  EXPECT_GE(r.prune.pairs_reused, 1u);
}

}  // namespace
}  // namespace odrc
