// Hot-swap acceptance (DESIGN.md §9): a session must be able to flip to a new
// frozen snapshot while checks are in flight. The session mutex serializes
// the flip against whole checks, so every check observes exactly one layout
// version — never a mix — and the old mapping stays alive (shared_ptr) until
// its last reader finishes. Run under TSan by the CI 'Snapshot' regex.
#include "engine/snapshot_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/rule.hpp"
#include "serve/session.hpp"
#include "workload/workload.hpp"

namespace odrc::serve {
namespace {

using workload::layers;
using workload::tech;

std::vector<rules::rule> deck() {
  return {
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space).named("M1.S"),
      rules::layer(layers::M1).width().greater_than(tech::wire_width).named("M1.W"),
  };
}

std::string temp_snap(const std::string& tag) {
  return (std::filesystem::temp_directory_path() / ("odrc_swap_test_" + tag + ".snap"))
      .string();
}

db::library base_lib() {
  workload::design_spec spec = workload::spec_for("uart", 0.3);
  spec.inject = {2, 1, 0, 0};
  return workload::generate(spec).lib;
}

// The v2 layout adds a deterministic extra spacing violation in the top cell,
// so the two versions have distinct (and known) key sets.
db::library v2_lib(db::library lib) {
  const db::cell_id top = lib.top_cells().front();
  lib.at(top).add_rect(layers::M1, {800000, 800000, 800060, 800018});
  lib.at(top).add_rect(layers::M1, {800000, 800021, 800060, 800039});
  return lib;
}

TEST(SnapshotSwap, ReloadFlipsBetweenChecks) {
  const db::library l1 = base_lib();
  const db::library l2 = v2_lib(l1);
  const std::string p1 = temp_snap("v1");
  const std::string p2 = temp_snap("v2");
  engine::build_snapshot_file(l1, p1);
  engine::build_snapshot_file(l2, p2);

  // Ground truth per version.
  const auto fs1 = engine::frozen_snapshot::load(p1);
  const auto fs2 = engine::frozen_snapshot::load(p2);
  session g1(fs1, fs1->make_library(), deck());
  session g2(fs2, fs2->make_library(), deck());
  g1.check_full();
  g2.check_full();
  const std::vector<std::string> k1 = g1.keys();
  const std::vector<std::string> k2 = g2.keys();
  ASSERT_NE(k1, k2);

  session sess(fs1, fs1->make_library(), deck());
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad{0}, checks{0};

  // Checker threads hammer full checks; every result must equal one version's
  // ground truth exactly — a torn check (half v1, half v2) equals neither.
  std::vector<std::thread> checkers;
  for (int t = 0; t < 2; ++t) {
    checkers.emplace_back([&] {
      while (!stop.load()) {
        sess.check_full();
        const std::vector<std::string> k = sess.keys();
        if (k != k1 && k != k2) bad.fetch_add(1);
        checks.fetch_add(1);
      }
    });
  }

  // Swapper thread flips versions concurrently.
  std::thread swapper([&] {
    for (int i = 0; i < 8; ++i) {
      const bool even = (i % 2) == 0;
      const auto& fs = even ? fs2 : fs1;
      sess.reload(fs, fs->make_library());
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true);
  });

  swapper.join();
  for (std::thread& t : checkers) t.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(checks.load(), 0u);

  // After the dust settles the session is on v1 (last reload) and a fresh
  // check reproduces v1's ground truth.
  sess.check_full();
  EXPECT_EQ(sess.keys(), k1);
}

// Dropping every owner of the old mapping while a swapped session keeps
// running: the shared_ptr refcount (not the session) owns the lifetime.
TEST(SnapshotSwap, OldMappingOutlivesReload) {
  const db::library l1 = base_lib();
  const std::string p1 = temp_snap("life_v1");
  const std::string p2 = temp_snap("life_v2");
  engine::build_snapshot_file(l1, p1);
  engine::build_snapshot_file(v2_lib(l1), p2);

  auto fs1 = engine::frozen_snapshot::load(p1);
  session sess(fs1, fs1->make_library(), deck());
  sess.check_full();
  const std::vector<std::string> before = sess.keys();
  fs1.reset();  // the session's copy is now the only owner

  auto fs2 = engine::frozen_snapshot::load(p2);
  sess.reload(fs2, fs2->make_library());  // drops the last v1 reference
  fs2.reset();
  sess.check_full();
  EXPECT_NE(sess.keys(), before);

  // reload(nullptr) falls back to a mutable snapshot over the same library.
  auto fs2b = engine::frozen_snapshot::load(p2);
  db::library lib2 = fs2b->make_library();
  const std::vector<std::string> frozen_keys = sess.keys();
  sess.reload(nullptr, std::move(lib2));
  sess.check_full();
  EXPECT_EQ(sess.keys(), frozen_keys);
}

}  // namespace
}  // namespace odrc::serve
