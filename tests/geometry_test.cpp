#include "infra/geometry.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <sstream>

namespace odrc {
namespace {

TEST(Point, Arithmetic) {
  const point a{3, 4}, b{1, -2};
  EXPECT_EQ((a + b), (point{4, 2}));
  EXPECT_EQ((a - b), (point{2, 6}));
  EXPECT_EQ(a, (point{3, 4}));
  EXPECT_LT(b, a);
}

TEST(Rect, EmptyByDefault) {
  const rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.area(), 0);
  EXPECT_FALSE(r.overlaps(r));
}

TEST(Rect, JoinMeetIdentity) {
  const rect a{0, 0, 10, 10};
  const rect none;
  EXPECT_EQ(a.join(none), a);
  EXPECT_EQ(none.join(a), a);
  EXPECT_TRUE(a.meet(none).empty());
}

TEST(Rect, OverlapsClosedSemantics) {
  const rect a{0, 0, 10, 10};
  const rect touching{10, 0, 20, 10};  // shares edge x=10
  const rect corner{10, 10, 20, 20};   // shares a single point
  const rect apart{11, 0, 20, 10};
  EXPECT_TRUE(a.overlaps(touching));
  EXPECT_TRUE(a.overlaps(corner));
  EXPECT_FALSE(a.overlaps(apart));
  EXPECT_FALSE(a.overlaps_strictly(touching));
  EXPECT_TRUE(a.overlaps_strictly(rect{5, 5, 15, 15}));
}

TEST(Rect, ContainsAndInflate) {
  const rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.contains(point{0, 0}));
  EXPECT_TRUE(a.contains(point{10, 10}));
  EXPECT_FALSE(a.contains(point{11, 10}));
  EXPECT_TRUE(a.contains(rect{2, 2, 8, 8}));
  EXPECT_FALSE(a.contains(rect{2, 2, 11, 8}));
  EXPECT_EQ(a.inflated(3), (rect{-3, -3, 13, 13}));
  EXPECT_TRUE(rect{}.inflated(5).empty());
}

TEST(Rect, AreaUses64Bit) {
  const rect big{0, 0, 2000000000, 2000000000};
  EXPECT_EQ(big.area(), 4000000000000000000LL);
}

TEST(Edge, DirectionAndLevels) {
  const edge east{{0, 5}, {10, 5}};
  const edge west{{10, 5}, {0, 5}};
  const edge north{{3, 0}, {3, 9}};
  const edge south{{3, 9}, {3, 0}};
  EXPECT_EQ(east.dir(), edge_dir::east);
  EXPECT_EQ(west.dir(), edge_dir::west);
  EXPECT_EQ(north.dir(), edge_dir::north);
  EXPECT_EQ(south.dir(), edge_dir::south);
  EXPECT_EQ(opposite(edge_dir::east), edge_dir::west);
  EXPECT_EQ(opposite(edge_dir::north), edge_dir::south);
  EXPECT_EQ(east.level(), 5);
  EXPECT_EQ(north.level(), 3);
  EXPECT_EQ(east.lo(), 0);
  EXPECT_EQ(east.hi(), 10);
  EXPECT_EQ(south.length(), 9);
  EXPECT_TRUE(is_horizontal(edge_dir::west));
  EXPECT_FALSE(is_horizontal(edge_dir::south));
}

TEST(Edge, ProjectionOverlap) {
  const edge a{{0, 0}, {10, 0}};
  const edge b{{5, 3}, {15, 3}};
  const edge c{{12, 3}, {20, 3}};
  EXPECT_EQ(projection_overlap(a, b), 5);
  EXPECT_EQ(projection_overlap(a, c), -2);
  EXPECT_EQ(projection_overlap(a, edge{{10, 3}, {20, 3}}), 0);  // touching projections
}

TEST(Edge, SquaredDistanceParallel) {
  const edge a{{0, 0}, {10, 0}};
  const edge b{{0, 7}, {10, 7}};
  EXPECT_EQ(squared_distance(a, b), 49);
  // Disjoint projections: corner-to-corner.
  const edge c{{13, 4}, {20, 4}};
  EXPECT_EQ(squared_distance(a, c), 9 + 16);
}

TEST(Edge, SquaredDistancePerpendicular) {
  const edge h{{0, 0}, {10, 0}};
  const edge v{{5, 1}, {5, 8}};
  EXPECT_EQ(squared_distance(h, v), 1);
  const edge crossing{{5, -2}, {5, 2}};
  EXPECT_EQ(squared_distance(h, crossing), 0);
}

// ---------------------------------------------------------------------------
// Transforms
// ---------------------------------------------------------------------------

TEST(Transform, Identity) {
  const transform t;
  EXPECT_TRUE(t.is_identity());
  EXPECT_TRUE(t.is_translation());
  EXPECT_TRUE(t.is_isometry());
  EXPECT_EQ(t.apply(point{7, -3}), (point{7, -3}));
}

TEST(Transform, Rotations) {
  transform r90;
  r90.rotation = 1;
  EXPECT_EQ(r90.apply(point{1, 0}), (point{0, 1}));
  EXPECT_EQ(r90.apply(point{0, 1}), (point{-1, 0}));
  transform r180;
  r180.rotation = 2;
  EXPECT_EQ(r180.apply(point{3, 4}), (point{-3, -4}));
  transform r270;
  r270.rotation = 3;
  EXPECT_EQ(r270.apply(point{1, 0}), (point{0, -1}));
}

TEST(Transform, ReflectThenRotate) {
  // GDSII STRANS: reflect about x BEFORE rotating.
  transform t;
  t.reflect_x = true;
  t.rotation = 1;
  // (1, 2) -> reflect -> (1, -2) -> rotate 90 -> (2, 1)
  EXPECT_EQ(t.apply(point{1, 2}), (point{2, 1}));
}

TEST(Transform, Magnification) {
  transform t;
  t.mag = 3;
  t.offset = {10, 0};
  EXPECT_EQ(t.apply(point{2, 5}), (point{16, 15}));
  EXPECT_FALSE(t.is_isometry());
}

TEST(Transform, RectMapping) {
  transform t;
  t.rotation = 1;
  const rect r{0, 0, 4, 2};
  // Corners (0,0) and (4,2) map to (0,0) and (-2,4); normalized MBR.
  EXPECT_EQ(t.apply(r), (rect{-2, 0, 0, 4}));
  EXPECT_TRUE(t.apply(rect{}).empty());
}

// Property: compose is associative with apply, and inverse round-trips, for
// all 8 isometry linear parts x random offsets.
class TransformProperty : public ::testing::TestWithParam<int> {};

TEST_P(TransformProperty, ComposeMatchesSequentialApply) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<coord_t> d(-1000, 1000);
  std::uniform_int_distribution<int> rot(0, 3), flip(0, 1);
  for (int iter = 0; iter < 200; ++iter) {
    transform a{{d(rng), d(rng)}, static_cast<std::uint16_t>(rot(rng)), flip(rng) != 0, 1};
    transform b{{d(rng), d(rng)}, static_cast<std::uint16_t>(rot(rng)), flip(rng) != 0, 1};
    const point p{d(rng), d(rng)};
    EXPECT_EQ(a.compose(b).apply(p), a.apply(b.apply(p)));
  }
}

TEST_P(TransformProperty, InverseRoundTrips) {
  std::mt19937 rng(GetParam() + 17);
  std::uniform_int_distribution<coord_t> d(-1000, 1000);
  std::uniform_int_distribution<int> rot(0, 3), flip(0, 1);
  for (int iter = 0; iter < 200; ++iter) {
    transform a{{d(rng), d(rng)}, static_cast<std::uint16_t>(rot(rng)), flip(rng) != 0, 1};
    const point p{d(rng), d(rng)};
    EXPECT_EQ(a.inverse().apply(a.apply(p)), p);
    EXPECT_EQ(a.apply(a.inverse().apply(p)), p);
    EXPECT_TRUE(a.inverse().compose(a).is_identity() || a.inverse().compose(a).offset == point{});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperty, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Polygons
// ---------------------------------------------------------------------------

TEST(Polygon, RectHelpers) {
  const polygon p = polygon::from_rect({0, 0, 10, 4});
  EXPECT_TRUE(p.valid());
  EXPECT_TRUE(p.is_rectilinear());
  EXPECT_TRUE(p.is_clockwise());
  EXPECT_EQ(p.area(), 40);
  EXPECT_EQ(p.signed_area(), -40);
  EXPECT_EQ(p.mbr(), (rect{0, 0, 10, 4}));
  EXPECT_EQ(p.edge_count(), 4u);
}

TEST(Polygon, ShoelaceLShape) {
  // L-shape, clockwise: 18-wide legs.
  polygon l{{{0, 0}, {0, 100}, {18, 100}, {18, 18}, {60, 18}, {60, 0}}};
  EXPECT_TRUE(l.is_clockwise());
  EXPECT_EQ(l.area(), 18 * 100 + 42 * 18);
  EXPECT_TRUE(l.is_rectilinear());
}

TEST(Polygon, MakeClockwise) {
  polygon ccw{{{0, 0}, {10, 0}, {10, 10}, {0, 10}}};
  EXPECT_FALSE(ccw.is_clockwise());
  ccw.make_clockwise();
  EXPECT_TRUE(ccw.is_clockwise());
  EXPECT_EQ(ccw.area(), 100);
}

TEST(Polygon, RectilinearRejectsDiagonals) {
  const polygon diag{{{0, 0}, {5, 5}, {10, 0}, {5, -5}}};
  EXPECT_FALSE(diag.is_rectilinear());
  const polygon degenerate{{{0, 0}, {0, 0}, {5, 0}, {5, 5}}};
  EXPECT_FALSE(degenerate.is_rectilinear());
  polygon too_small{{{0, 0}, {1, 1}}};
  EXPECT_FALSE(too_small.is_rectilinear());
}

TEST(Polygon, ContainsEvenOdd) {
  polygon sq = polygon::from_rect({0, 0, 10, 10});
  EXPECT_TRUE(sq.contains(point{5, 5}));
  EXPECT_TRUE(sq.contains(point{0, 0}));    // boundary
  EXPECT_TRUE(sq.contains(point{10, 5}));   // boundary
  EXPECT_FALSE(sq.contains(point{11, 5}));
  EXPECT_FALSE(sq.contains(point{-1, -1}));

  // L-shape: the notch region is outside.
  polygon l{{{0, 0}, {0, 100}, {18, 100}, {18, 18}, {60, 18}, {60, 0}}};
  EXPECT_TRUE(l.contains(point{9, 50}));
  EXPECT_TRUE(l.contains(point{40, 9}));
  EXPECT_FALSE(l.contains(point{40, 50}));
}

TEST(Polygon, TransformedPreservesClockwise) {
  const polygon sq = polygon::from_rect({0, 0, 10, 4});
  transform mirror;
  mirror.reflect_x = true;
  const polygon m = sq.transformed(mirror);
  EXPECT_TRUE(m.is_clockwise());
  EXPECT_EQ(m.mbr(), (rect{0, -4, 10, 0}));
  EXPECT_EQ(m.area(), 40);
}

TEST(Polygon, CollectEdges) {
  const polygon sq = polygon::from_rect({0, 0, 10, 4});
  std::vector<edge> es;
  sq.collect_edges(es);
  ASSERT_EQ(es.size(), 4u);
  // Clockwise ring: every consecutive pair shares a vertex and the ring is
  // closed.
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(es[i].to, es[(i + 1) % es.size()].from);
  }
}

TEST(AreaOverflow, SaturateAreaClampsBothDirections) {
  constexpr area_t top = std::numeric_limits<area_t>::max();
  EXPECT_EQ(saturate_area(__int128{42}), 42);
  EXPECT_EQ(saturate_area(static_cast<__int128>(top)), top);
  EXPECT_EQ(saturate_area(static_cast<__int128>(top) * 4), top);
  EXPECT_EQ(saturate_area(static_cast<__int128>(top) * -4), -top);
}

TEST(AreaOverflow, SquareAreaExactUpTo64Bits) {
  // Side 2^31 gives area 2^62: still representable, must stay exact.
  const coord_t m = coord_t{1} << 30;
  const polygon p = polygon::from_rect({-m, -m, m, m});
  EXPECT_EQ(p.area(), area_t{1} << 62);
}

TEST(AreaOverflow, GiantSquareSaturatesInsteadOfWrapping) {
  // A square spanning nearly the whole coordinate space has true area
  // 4*(2^31-2)^2 ~ 1.8e19 > 2^63-1. Before the 128-bit shoelace accumulation
  // the partial sums overflowed (UB in the best case, a wrapped negative
  // area in practice); now the result saturates with its sign intact.
  const coord_t m = std::numeric_limits<coord_t>::max() - 1;
  const polygon p = polygon::from_rect({-m, -m, m, m});
  EXPECT_EQ(p.area(), std::numeric_limits<area_t>::max());
  EXPECT_EQ(p.signed_area(), -std::numeric_limits<area_t>::max());  // clockwise
  EXPECT_TRUE(p.is_clockwise());
}

TEST(AreaOverflow, SquaredDistanceSaturatesAtCoordinateExtremes) {
  const coord_t m = std::numeric_limits<coord_t>::max() - 1;
  // Opposite corners of the coordinate space: dx^2 + dy^2 ~ 3.7e19.
  EXPECT_EQ(squared_distance(point{-m, -m}, point{m, m}),
            std::numeric_limits<area_t>::max());
  // Parallel horizontal edges with overlapping projections, 2m apart: the
  // level-distance branch squares ~4.3e9.
  const edge e1{{-10, -m}, {10, -m}};
  const edge e2{{10, m}, {-10, m}};
  EXPECT_EQ(squared_distance(e1, e2), std::numeric_limits<area_t>::max());
  // Sanity: small inputs still exact.
  EXPECT_EQ(squared_distance(point{0, 0}, point{3, 4}), 25);
}

TEST(Geometry, StreamOutput) {
  std::ostringstream os;
  os << point{1, 2} << ' ' << rect{0, 0, 3, 3} << ' ' << edge{{0, 0}, {1, 0}} << ' '
     << transform{} << ' ' << polygon::from_rect({0, 0, 1, 1});
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace odrc
