// Tests for the odrc::trace span recorder: recording semantics, the Chrome
// trace-event JSON export, the metrics aggregation, and the golden end-to-end
// trace of a parallel deck run (pipeline_depth=2 must show work on at least
// two overlapping device-stream tracks, and the trace's counter totals must
// reconcile with the report's device_check_stats).
#include "infra/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "device/device.hpp"
#include "engine/engine.hpp"
#include "workload/workload.hpp"

namespace odrc {
namespace {

using trace::recorder;
using trace::tagged_event;

/// Make sure a test never leaks an enabled recorder into its neighbours.
struct recording_guard {
  recording_guard() { recorder::instance().enable(); }
  ~recording_guard() { recorder::instance().disable(); }
};

std::int64_t counter_value(const trace::metrics_summary& m, const std::string& key) {
  for (const trace::counter_stats& c : m.counters) {
    if (c.key == key) return c.last;
  }
  return -1;
}

const trace::span_stats* span_of(const trace::metrics_summary& m, const std::string& key) {
  for (const trace::span_stats& s : m.spans) {
    if (s.key == key) return &s;
  }
  return nullptr;
}

/// Closed time intervals of `cat` spans per track, keyed by tid, restricted
/// to tracks whose name starts with `track_prefix`.
std::map<std::uint32_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>> span_intervals(
    const std::vector<tagged_event>& events, const char* cat, const char* track_prefix) {
  std::map<std::uint32_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>> out;
  std::uint32_t cur = ~0u;
  bool wanted = false;
  std::vector<std::uint64_t> stack;  // begin timestamps of open `cat` spans
  for (const tagged_event& te : events) {
    if (te.tid != cur) {
      cur = te.tid;
      stack.clear();
      wanted = te.thread_name->rfind(track_prefix, 0) == 0;
    }
    if (!wanted || std::strcmp(te.e.cat, cat) != 0) continue;
    if (te.e.k == trace::event::kind::begin) {
      stack.push_back(te.e.ts_ns);
    } else if (te.e.k == trace::event::kind::end && !stack.empty()) {
      out[cur].emplace_back(stack.back(), te.e.ts_ns);
      stack.pop_back();
    }
  }
  return out;
}

bool any_cross_track_overlap(
    const std::map<std::uint32_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>>& iv) {
  for (auto a = iv.begin(); a != iv.end(); ++a) {
    for (auto b = std::next(a); b != iv.end(); ++b) {
      for (const auto& [alo, ahi] : a->second) {
        for (const auto& [blo, bhi] : b->second) {
          if (std::max(alo, blo) < std::min(ahi, bhi)) return true;
        }
      }
    }
  }
  return false;
}

TEST(TraceRecorder, DisabledSitesEmitNothing) {
  recorder& rec = recorder::instance();
  rec.enable();
  rec.disable();  // enable() cleared the buffers; everything below is gated off
  {
    trace::span s("test", "noop");
  }
  trace::counter("test", "noop_counter", 1);
  trace::instant("test", "noop_instant", "delta", 1);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(TraceRecorder, SpansCountersAndMetrics) {
  recorder& rec = recorder::instance();
  {
    recording_guard on;
    rec.name_this_thread("tester");
    trace::span outer("test", "outer");
    for (int i = 0; i < 3; ++i) {
      trace::span inner("test", "inner", "i", i);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    trace::counter("test", "running", 10);
    trace::counter("test", "running", 30);
    trace::counter("test", "running", 20);
    trace::instant("test", "delta_sum", "delta", 5);
    trace::instant("test", "delta_sum", "delta", 7);
  }
  const trace::metrics_summary m = rec.metrics();

  const trace::span_stats* outer = span_of(m, "test:outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const trace::span_stats* inner = span_of(m, "test:inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 3u);
  EXPECT_LE(inner->p50_ms, inner->p95_ms);
  EXPECT_LE(inner->p95_ms, inner->max_ms);
  EXPECT_GE(outer->max_ms, inner->total_ms - 1e-6);  // inner spans nest in outer

  // Counter samples carry running totals: the aggregate is the maximum.
  EXPECT_EQ(counter_value(m, "test:running"), 30);
  // Instants with a "delta" payload accumulate.
  EXPECT_EQ(counter_value(m, "test:delta_sum"), 12);

  bool found_track = false;
  for (const trace::track_stats& t : m.tracks) {
    if (t.name == "tester") {
      found_track = true;
      EXPECT_GT(t.busy_ms, 0.0);
    }
  }
  EXPECT_TRUE(found_track);
  EXPECT_GT(m.wall_ms, 0.0);
}

TEST(TraceRecorder, ChromeJsonWellFormed) {
  recorder& rec = recorder::instance();
  {
    recording_guard on;
    rec.name_this_thread("json \"quoted\" track");
    trace::span a("test", "alpha", "k", 1);
    trace::span b("test", "beta");
    trace::counter("test", "gauge", 42);
    trace::instant("test", "ping", "delta", 1);
  }
  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string s = os.str();

  EXPECT_EQ(s.rfind("{\"traceEvents\":[", 0), 0u) << s.substr(0, 40);
  EXPECT_NE(s.find("\"ph\":\"M\""), std::string::npos);  // thread_name metadata
  EXPECT_NE(s.find("json \\\"quoted\\\" track"), std::string::npos);

  // One record per line, each a brace-balanced object; B and E counts match.
  std::istringstream lines(s);
  std::string line;
  std::size_t begins = 0, ends = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '{') continue;
    if (line == "{\"traceEvents\":[") continue;  // array header, closed by the footer
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
      }
    }
    EXPECT_EQ(depth, 0) << line;
    if (line.find("\"ph\":\"B\"") != std::string::npos) ++begins;
    if (line.find("\"ph\":\"E\"") != std::string::npos) ++ends;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(begins, ends);
  EXPECT_NE(s.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(s.substr(s.size() - 4), "\n]}\n") << "missing array/object close";
}

TEST(TraceGolden, TwoStreamsOverlapDeterministically) {
  device::context& ctx = device::context::instance();
  device::stream s1(ctx);
  device::stream s2(ctx);
  recorder& rec = recorder::instance();
  {
    recording_guard on;
    const auto kern = [](device::thread_id) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    };
    // Each kernel runs well over a millisecond; the two dispatcher threads
    // submit them near-simultaneously, so their kernel spans must overlap.
    s1.launch(16, 8, kern);
    s2.launch(16, 8, kern);
    s1.synchronize();
    s2.synchronize();
  }
  const auto events = rec.snapshot();
  const auto iv = span_intervals(events, "device", "stream ");
  ASSERT_GE(iv.size(), 2u) << "expected kernel spans on two stream tracks";
  EXPECT_TRUE(any_cross_track_overlap(iv));
}

TEST(TraceGolden, ParallelDeckAtPipelineDepth2) {
  auto spec = workload::spec_for("sha3", 0.5);
  spec.inject = {2, 2, 2, 2};
  const auto g = workload::generate(spec);

  engine_config cfg;
  cfg.run_mode = engine::mode::parallel;
  cfg.pipeline_depth = 2;
  drc_engine eng(cfg);
  eng.add_rules({
      rules::layer(workload::layers::M1).spacing().greater_than(workload::tech::wire_space),
      rules::layer(workload::layers::M2).spacing().greater_than(workload::tech::wire_space),
      rules::layer(workload::layers::M3).spacing().greater_than(workload::tech::wire_space),
  });

  recorder& rec = recorder::instance();
  rec.enable();
  const engine::deck_report dr = eng.check_deck(g.lib);
  rec.disable();

  const std::vector<tagged_event> events = rec.snapshot();
  ASSERT_FALSE(events.empty());

  // (1) Per track: timestamps monotone, begin/end strictly nested (RAII
  // spans can only close LIFO) and balanced.
  std::uint32_t cur = ~0u;
  std::uint64_t last_ts = 0;
  std::vector<const trace::event*> stack;
  for (const tagged_event& te : events) {
    if (te.tid != cur) {
      EXPECT_TRUE(stack.empty()) << "unbalanced spans on tid " << cur;
      stack.clear();
      cur = te.tid;
      last_ts = 0;
    }
    EXPECT_GE(te.e.ts_ns, last_ts) << "timestamps not monotone on tid " << cur;
    last_ts = te.e.ts_ns;
    if (te.e.k == trace::event::kind::begin) {
      stack.push_back(&te.e);
    } else if (te.e.k == trace::event::kind::end) {
      ASSERT_FALSE(stack.empty()) << "end without begin: " << te.e.cat << ":" << te.e.name;
      EXPECT_STREQ(stack.back()->name, te.e.name);
      EXPECT_STREQ(stack.back()->cat, te.e.cat);
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty());

  // (2) pipeline_depth=2 round-robins rows over two streams: device spans
  // must appear on >= 2 stream tracks, and some pair of them must overlap in
  // time (the Section V-C claim the trace exists to make visible).
  const auto iv = span_intervals(events, "device", "stream ");
  ASSERT_GE(iv.size(), 2u) << "expected device work on at least two stream tracks";
  EXPECT_TRUE(any_cross_track_overlap(iv)) << "no overlapping device spans across streams";

  // (3) The pipeline phases show up as spans.
  const trace::metrics_summary m = rec.metrics();
  for (const char* key : {"engine:check_deck", "engine:run_pair_group", "pipeline:partition",
                          "pipeline:pack", "device:kernel", "device:h2d", "sweep:finish"}) {
    const trace::span_stats* s = span_of(m, key);
    ASSERT_NE(s, nullptr) << "missing span population " << key;
    EXPECT_GT(s->count, 0u) << key;
  }
  const trace::span_stats* deck_span = span_of(m, "engine:check_deck");
  EXPECT_EQ(deck_span->count, 1u);
  EXPECT_EQ(span_of(m, "pipeline:pack")->count, dr.total.rows);

  // (4) Counter totals reconcile with the report's device_check_stats: the
  // trace is an alternate observer of the same execution, so the sums of the
  // "delta" instants must equal the stats the sweep accumulated itself.
  const sweep::device_check_stats& ds = dr.total.device_stats;
  EXPECT_EQ(counter_value(m, "sweep:edges_uploaded"),
            static_cast<std::int64_t>(ds.edges_uploaded));
  EXPECT_EQ(counter_value(m, "sweep:edge_pairs_tested"),
            static_cast<std::int64_t>(ds.edge_pairs_tested));
  EXPECT_EQ(counter_value(m, "sweep:sweep_launches"),
            static_cast<std::int64_t>(ds.sweep_launches));
  EXPECT_EQ(counter_value(m, "sweep:brute_launches"),
            static_cast<std::int64_t>(ds.brute_launches));
  EXPECT_EQ(counter_value(m, "sweep:overflow_retries"),
            static_cast<std::int64_t>(ds.overflow_retries));
  // Every sweep/brute launch is at least one device kernel launch.
  EXPECT_GE(counter_value(m, "device:kernels_launched"),
            static_cast<std::int64_t>(ds.sweep_launches + ds.brute_launches));
  EXPECT_GT(counter_value(m, "device:bytes_h2d"), 0);

  // (5) The exported JSON for the same recording is well-formed.
  std::ostringstream os;
  rec.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
  std::size_t b = 0, e = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos; ++pos) ++b;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos; ++pos) ++e;
  EXPECT_EQ(b, e);
  EXPECT_GT(b, 0u);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
}

TEST(TraceGolden, MetricsTextRendersEverySection) {
  recorder& rec = recorder::instance();
  {
    recording_guard on;
    trace::span s("test", "render_me");
    trace::counter("test", "gauge", 7);
  }
  std::ostringstream os;
  rec.write_metrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("trace metrics"), std::string::npos);
  EXPECT_NE(text.find("test:render_me"), std::string::npos);
  EXPECT_NE(text.find("test:gauge = 7"), std::string::npos);
  EXPECT_NE(text.find("tracks:"), std::string::npos);
}

}  // namespace
}  // namespace odrc
