// Host multithreading of the sequential engine: clip-parallel execution must
// produce exactly the serial violation set on every rule and design, with
// memo tables shared across worker threads.
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "workload/workload.hpp"

namespace odrc::engine {
namespace {

using workload::layers;
using workload::tech;

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

class HostParallel : public ::testing::TestWithParam<const char*> {};

TEST_P(HostParallel, MatchesSerialOnAllRules) {
  auto spec = workload::spec_for(GetParam(), 0.4);
  spec.inject = {2, 2, 2, 2};
  const auto g = workload::generate(spec);

  drc_engine serial({.host_parallel = false});
  drc_engine parallel({.host_parallel = true});

  for (const db::layer_t m : {layers::M1, layers::M2, layers::M3}) {
    EXPECT_EQ(norm(serial.run_spacing(g.lib, m, tech::wire_space).violations),
              norm(parallel.run_spacing(g.lib, m, tech::wire_space).violations))
        << "spacing layer " << m;
  }
  EXPECT_EQ(
      norm(serial.run_enclosure(g.lib, layers::V1, layers::M1, tech::via_enclosure).violations),
      norm(parallel.run_enclosure(g.lib, layers::V1, layers::M1, tech::via_enclosure)
               .violations));
  EXPECT_EQ(
      norm(serial.run_enclosure(g.lib, layers::V2, layers::M2, tech::via_enclosure).violations),
      norm(parallel.run_enclosure(g.lib, layers::V2, layers::M2, tech::via_enclosure)
               .violations));
}

INSTANTIATE_TEST_SUITE_P(Designs, HostParallel, ::testing::Values("uart", "ibex", "sha3"));

TEST(HostParallelCfg, MemoizationStillEffective) {
  auto spec = workload::spec_for("sha3", 0.5);
  const auto g = workload::generate(spec);
  drc_engine parallel({.host_parallel = true});
  const auto r = parallel.run_spacing(g.lib, layers::M1, tech::wire_space);
  // Reuse still dominates: races may duplicate a handful of computations but
  // the shared memo must serve the bulk of the instances.
  EXPECT_GT(r.prune.intra_reused + r.prune.pairs_reused,
            (r.prune.intra_computed + r.prune.pairs_computed) * 2);
}

TEST(HostParallelCfg, WorksWithPrlTablesAndRegion) {
  auto spec = workload::spec_for("uart", 0.8);
  spec.inject = {1, 1, 0, 0};
  const auto g = workload::generate(spec);
  drc_engine serial({.host_parallel = false});
  drc_engine parallel({.host_parallel = true});

  checks::spacing_table t = checks::spacing_table::simple(tech::wire_space);
  t.add_tier(800, 24);
  EXPECT_EQ(norm(serial.run_spacing(g.lib, layers::M2, t).violations),
            norm(parallel.run_spacing(g.lib, layers::M2, t).violations));

  const rules::rule r = rules::layer(layers::M1).spacing().greater_than(tech::wire_space);
  const rect window{0, -450, 3000, 1000};
  EXPECT_EQ(norm(serial.check_region(g.lib, r, window).violations),
            norm(parallel.check_region(g.lib, r, window).violations));
}

}  // namespace
}  // namespace odrc::engine
