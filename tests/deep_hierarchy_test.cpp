// Deep-hierarchy torture tests: violations defined at the leaves of an
// 8-level hierarchy whose every level rotates/mirrors/offsets, checked
// through the engine's memoized paths against the flat reference. Any error
// in transform composition, per-layer child pruning or memo keying shows up
// as a mismatch; the AREF-in-AREF nesting also exercises array expansion at
// depth.
#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "db/mbr_index.hpp"
#include "engine/engine.hpp"

namespace odrc {
namespace {

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

// leaf: a compliant bar pair plus a violating close pair on layer 1.
// levelK (K = 1..depth): two references of level(K-1), one rotated or
// mirrored, spaced far apart.
db::library deep_lib(int depth) {
  db::library lib;
  db::cell_id prev = lib.add_cell("leaf");
  lib.at(prev).add_rect(1, {0, 0, 18, 100});
  lib.at(prev).add_rect(1, {46, 0, 64, 100});   // gap 28: compliant
  lib.at(prev).add_rect(1, {100, 0, 118, 100});
  lib.at(prev).add_rect(1, {128, 0, 146, 100}); // gap 10: violating
  coord_t pitch = 400;
  for (int k = 1; k <= depth; ++k) {
    const db::cell_id cur = lib.add_cell("n" + std::to_string(k));
    lib.at(cur).add_ref({prev, transform{{0, 0}, 0, false, 1}});
    transform t;
    t.offset = {pitch, 0};
    t.rotation = static_cast<std::uint16_t>(k & 3);
    t.reflect_x = (k % 2) == 0;
    lib.at(cur).add_ref({prev, t});
    prev = cur;
    pitch = static_cast<coord_t>(pitch * 2 + 300);
  }
  return lib;
}

TEST(DeepHierarchy, EngineMatchesFlatThroughEightLevels) {
  const db::library lib = deep_lib(8);
  EXPECT_EQ(lib.hierarchy_depth(), 9u);
  EXPECT_EQ(lib.expanded_polygon_count(), 4u * (1u << 8));

  drc_engine seq;
  drc_engine par({.run_mode = engine::mode::parallel});
  baseline::flat_checker flat;
  const auto want = norm(flat.run_spacing(lib, 1, 18).violations);
  // One violating pair per leaf instance; each yields several edge-pair
  // records, so at minimum one per instance.
  EXPECT_GE(want.size(), 1u << 8);
  EXPECT_EQ(norm(seq.run_spacing(lib, 1, 18).violations), want);
  EXPECT_EQ(norm(par.run_spacing(lib, 1, 18).violations), want);

  // The memo must collapse the exponential instance count to linear work:
  // one intra computation for the leaf plus a handful of cross pairs.
  const auto r = seq.run_spacing(lib, 1, 18);
  EXPECT_EQ(r.prune.intra_computed, 1u);
  EXPECT_EQ(r.prune.intra_reused, (1u << 8) - 1);
}

TEST(DeepHierarchy, NestedArraysExpandCorrectly) {
  // AREF of a cell that itself AREFs the leaf: 3x2 of 4x1 = 24 instances.
  db::library lib;
  const db::cell_id leaf = lib.add_cell("leaf");
  lib.at(leaf).add_rect(1, {0, 0, 10, 100});  // width violation at w=18
  const db::cell_id mid = lib.add_cell("mid");
  db::cell_array inner;
  inner.target = leaf;
  inner.cols = 4;
  inner.rows = 1;
  inner.col_step = {200, 0};
  lib.at(mid).add_array(inner);
  const db::cell_id top = lib.add_cell("top");
  db::cell_array outer;
  outer.target = mid;
  outer.cols = 3;
  outer.rows = 2;
  outer.col_step = {1000, 0};
  outer.row_step = {0, 500};
  outer.trans.rotation = 1;  // rotate the whole mid grid
  lib.at(top).add_array(outer);

  drc_engine e;
  const auto r = e.run_width(lib, 1, 18);
  EXPECT_EQ(r.violations.size(), 24u);
  baseline::flat_checker flat;
  EXPECT_EQ(norm(e.run_width(lib, 1, 18).violations),
            norm(flat.run_width(lib, 1, 18).violations));
  EXPECT_EQ(r.prune.intra_computed, 1u);
  EXPECT_EQ(r.prune.intra_reused, 23u);
}

TEST(DeepHierarchy, MbrIndexPrunesAtDepth) {
  const db::library lib = deep_lib(8);
  const db::mbr_index idx(lib);
  const db::cell_id top = lib.top_cells().front();
  // A window around the origin leaf only: the pruned query must visit a
  // small corner of the 2^8-instance tree.
  std::size_t n = 0;
  const std::uint64_t visited =
      idx.query(top, 1, rect{0, 0, 150, 100}, [&](const db::layer_hit&) { ++n; });
  EXPECT_GE(n, 4u);
  EXPECT_LT(visited, 64u);
}

}  // namespace
}  // namespace odrc
