// Sharded scatter-gather cluster tests (DESIGN.md §10): an in-process fleet
// of serve workers behind a coordinator must produce exactly the violation
// set of a single-process session — including spacing violations straddling
// a band seam, which both adjacent workers report and the coordinator dedups
// by key. Also covers the shard planner, worker-death propagation, the
// admission backpressure gate, and the TCP transport. Suite names start with
// "Cluster"/"Coord" so the TSan CI job picks them up.
#include "serve/coord.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "db/layout.hpp"
#include "engine/rule.hpp"
#include "engine/shard.hpp"
#include "serve/client.hpp"
#include "serve/session.hpp"

namespace odrc::serve {
namespace {

constexpr db::layer_t M1 = 19;

// Violations in both band interiors plus one spacing pair whose two edges
// sit on opposite sides of y = 500 (the manual seam): rect A tops out at
// y=498, rect B starts at y=503, gap 5 < min 25.
db::library make_cluster_lib() {
  db::library lib("cluster_test");
  const db::cell_id top = lib.add_cell("top");
  // lower band interior
  lib.at(top).add_rect(M1, {0, 0, 400, 10});       // width 10 < 18
  lib.at(top).add_rect(M1, {600, 0, 610, 10});     // 10x10: width + area
  lib.at(top).add_rect(M1, {0, 100, 200, 130});
  lib.at(top).add_rect(M1, {0, 140, 200, 170});    // spacing 10 < 25
  // seam straddler
  lib.at(top).add_rect(M1, {100, 460, 300, 498});
  lib.at(top).add_rect(M1, {100, 503, 300, 540});  // spacing 5 < 25, across the seam
  // upper band interior
  lib.at(top).add_rect(M1, {0, 800, 400, 815});    // width 15 < 18
  lib.at(top).add_rect(M1, {600, 900, 800, 930});
  lib.at(top).add_rect(M1, {600, 940, 800, 970});  // spacing 10 < 25
  // hierarchy in both bands
  const db::cell_id unit = lib.add_cell("unit");
  lib.at(unit).add_rect(M1, {0, 0, 200, 30});
  lib.at(top).add_ref({unit, transform{{1000, 50}, 0, false, 1}});
  lib.at(top).add_ref({unit, transform{{1000, 850}, 0, false, 1}});
  return lib;
}

std::vector<rules::rule> make_deck() {
  return {
      rules::layer(M1).width().greater_than(18).named("M1.W"),
      rules::layer(M1).spacing().greater_than(25).named("M1.S"),
      rules::layer(M1).area().greater_than(800).named("M1.A"),
  };
}

long field(const std::string& line, const std::string& word) {
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok == word) {
      long v = -1;
      in >> v;
      return v;
    }
  }
  return -1;
}

// Two bands split at y = 500, tiling the plane.
std::vector<rect> manual_bands() {
  using engine::shard_clamp_max;
  using engine::shard_clamp_min;
  return {{shard_clamp_min, shard_clamp_min, shard_clamp_max, 500},
          {shard_clamp_min, 501, shard_clamp_max, shard_clamp_max}};
}

struct Cluster : ::testing::Test {
  std::vector<std::unique_ptr<session_manager>> wsessions;
  std::vector<std::unique_ptr<server>> workers;
  std::vector<std::string> wpaths;
  std::unique_ptr<coordinator> coord;
  std::string cpath;

  void start_cluster(std::vector<rect> bands, coord_config tweak = {}) {
    const std::string stem =
        "/tmp/odrc_cl_" + std::to_string(::getpid()) + "_" + std::to_string(counter_.fetch_add(1));
    for (std::size_t i = 0; i < bands.size(); ++i) {
      wpaths.push_back(stem + "_w" + std::to_string(i) + ".sock");
      wsessions.push_back(std::make_unique<session_manager>());
      wsessions.back()->create(make_cluster_lib(), make_deck());
      server_config wc;
      wc.socket_path = wpaths.back();
      wc.workers = 2;
      workers.push_back(std::make_unique<server>(wc, *wsessions.back()));
      workers.back()->start();
    }
    cpath = stem + "_coord.sock";
    coord_config cc = tweak;
    cc.listen.socket_path = cpath;
    cc.listen.workers = 2;
    cc.worker_endpoints = wpaths;
    cc.bands = std::move(bands);
    coord = std::make_unique<coordinator>(std::move(cc));
    coord->start();
  }

  void TearDown() override {
    if (coord) {
      coord->stop();
      coord->wait();
    }
    for (auto& w : workers) {
      w->stop();
      w->wait();
    }
  }

  static inline std::atomic<int> counter_{0};
};

std::vector<std::string> single_process_keys() {
  session s(make_cluster_lib(), make_deck());
  s.check_full();
  return s.keys();
}

TEST_F(Cluster, ClusterShardedCheckMatchesSingleProcess) {
  start_cluster(manual_bands());
  const std::vector<std::string> expected = single_process_keys();
  ASSERT_FALSE(expected.empty());

  client c;
  c.connect(cpath);
  const frame chk = c.request(msg_type::check, 0);
  ASSERT_TRUE(client::ok(chk)) << chk.payload;
  EXPECT_EQ(field(client::status_line(chk), "total"), static_cast<long>(expected.size()));
  EXPECT_EQ(coord->current_keys(), expected);

  // The seam straddler really was reported by BOTH workers (and deduped):
  // some key must be in both per-worker stores.
  const std::vector<std::string> k0 = wsessions[0]->get(1)->keys();
  const std::vector<std::string> k1 = wsessions[1]->get(1)->keys();
  std::vector<std::string> both;
  std::set_intersection(k0.begin(), k0.end(), k1.begin(), k1.end(), std::back_inserter(both));
  EXPECT_FALSE(both.empty()) << "no seam-straddling violation was exercised";
  EXPECT_LT(both.size() + expected.size(), k0.size() + k1.size() + 1);  // dedup happened

  for (const worker_link_stats& w : coord->worker_stats()) {
    EXPECT_GE(w.legs, 1u);
    EXPECT_TRUE(w.healthy);
  }
}

TEST_F(Cluster, ClusterPlannedBandsAlsoMatchSingleProcess) {
  const db::library lib = make_cluster_lib();
  std::vector<rect> bands = engine::plan_shards(lib, 2);
  ASSERT_EQ(bands.size(), 2u);
  start_cluster(std::move(bands));

  client c;
  c.connect(cpath);
  const frame chk = c.request(msg_type::check, 0);
  ASSERT_TRUE(client::ok(chk)) << chk.payload;
  EXPECT_EQ(coord->current_keys(), single_process_keys());
}

TEST_F(Cluster, ClusterCheckRegionMatchesSingleProcess) {
  start_cluster(manual_bands());
  client c;
  c.connect(cpath);
  ASSERT_TRUE(client::ok(c.request(msg_type::check, 0)));

  // Window across the seam: the straddler must be reported exactly once.
  const rect w{0, 400, 1000, 600};
  session single(make_cluster_lib(), make_deck());
  const session::window_result expected = single.check_window(w);

  std::ostringstream payload;
  payload << w.x_min << ' ' << w.y_min << ' ' << w.x_max << ' ' << w.y_max << " keys";
  const frame r = c.request(msg_type::check_region, 0, payload.str());
  ASSERT_TRUE(client::ok(r)) << r.payload;
  EXPECT_EQ(field(client::status_line(r), "total"), static_cast<long>(expected.keys.size()));

  std::vector<std::string> got;
  std::istringstream body(r.payload);
  std::string line;
  while (std::getline(body, line)) {
    if (line.rfind("v ", 0) == 0) got.push_back(line.substr(2));
  }
  EXPECT_EQ(got, expected.keys);
}

// Broadcast edit + scattered recheck reconcile to the same keys as a
// single-process session performing the same edit + recheck — including a
// seam-straddling violation being globally fixed only when its LAST owner
// drops it (the owner-bitmask path).
TEST_F(Cluster, ClusterEditRecheckMatchesSingleProcess) {
  start_cluster(manual_bands());
  client c;
  c.connect(cpath);
  ASSERT_TRUE(client::ok(c.request(msg_type::check, 0)));

  session single(make_cluster_lib(), make_deck());
  single.check_full();

  // Move the upper straddler rect (M1 polygon index 5) up by 100: the seam
  // spacing violation is fixed on both workers; new geometry stays clear.
  const std::string script = "move_poly top 19 5 0 100\n";
  const frame ed = c.request(msg_type::edit, 0, script);
  ASSERT_TRUE(client::ok(ed)) << ed.payload;
  const auto ops = parse_edit_script(script);
  (void)single.apply(ops);

  const frame rc = c.request(msg_type::recheck, 0);
  ASSERT_TRUE(client::ok(rc)) << rc.payload;
  const recheck_result rr = single.recheck();

  EXPECT_EQ(field(client::status_line(rc), "fixed"), static_cast<long>(rr.diff.fixed.size()));
  EXPECT_EQ(field(client::status_line(rc), "new"),
            static_cast<long>(rr.diff.introduced.size()));
  EXPECT_GE(rr.diff.fixed.size(), 1u);  // the straddler was fixed
  EXPECT_EQ(coord->current_keys(), single.keys());

  // And a fresh scattered full check agrees with the incremental state.
  const frame chk2 = c.request(msg_type::check, 0);
  ASSERT_TRUE(client::ok(chk2));
  EXPECT_EQ(coord->current_keys(), single.keys());
}

TEST_F(Cluster, ClusterWorkerDeathPropagatesAsError) {
  start_cluster(manual_bands());
  client c;
  c.connect(cpath);
  ASSERT_TRUE(client::ok(c.request(msg_type::check, 0)));

  workers[1]->stop();
  workers[1]->wait();

  const frame chk = c.request(msg_type::check, 0);
  EXPECT_FALSE(client::ok(chk));
  EXPECT_EQ(chk.payload.rfind("error", 0), 0u) << chk.payload;
  const std::vector<worker_link_stats> ws = coord->worker_stats();
  EXPECT_GE(ws[1].failures, 1u);
  EXPECT_FALSE(ws[1].healthy);
  // The coordinator itself survives: local verbs still answer.
  EXPECT_TRUE(client::ok(c.request(msg_type::ping, 0)));
}

// With the admission threshold at zero, every check-class leg is delayed and
// finally shed: the health probe always reports at least its own in-flight
// slot, so the gate deterministically refuses.
TEST_F(Cluster, ClusterBackpressureShedsWhenOverloaded) {
  coord_config tweak;
  tweak.max_worker_depth = 0;
  tweak.admission_retries = 1;
  tweak.backoff_ms = 1;
  start_cluster(manual_bands(), tweak);

  client c;
  c.connect(cpath);
  const frame chk = c.request(msg_type::check, 0);
  EXPECT_FALSE(client::ok(chk));
  EXPECT_NE(chk.payload.find("busy"), std::string::npos) << chk.payload;
  std::uint64_t shed = 0, delayed = 0;
  for (const worker_link_stats& w : coord->worker_stats()) {
    shed += w.shed;
    delayed += w.delayed;
  }
  EXPECT_GE(shed, 1u);
  EXPECT_GE(delayed, 1u);
  // Ungated verbs still pass.
  EXPECT_TRUE(client::ok(c.request(msg_type::stats, 0)));
}

TEST_F(Cluster, ClusterStatsReportPerShardRouting) {
  start_cluster(manual_bands());
  client c;
  c.connect(cpath);
  ASSERT_TRUE(client::ok(c.request(msg_type::check, 0)));
  const frame st = c.request(msg_type::stats, 0);
  ASSERT_TRUE(client::ok(st));
  EXPECT_NE(st.payload.find("shard 0 "), std::string::npos) << st.payload;
  EXPECT_NE(st.payload.find("shard 1 "), std::string::npos);
  EXPECT_NE(st.payload.find("legs"), std::string::npos);
}

// The whole scatter-gather path over TCP framing: workers and coordinator
// listen on tcp:127.0.0.1:0, the kernel-resolved ports flow through
// bound_endpoint(), and the sharded check still matches single-process.
TEST_F(Cluster, CoordTcpTransportEndToEnd) {
  std::vector<rect> bands = manual_bands();
  for (std::size_t i = 0; i < bands.size(); ++i) {
    wsessions.push_back(std::make_unique<session_manager>());
    wsessions.back()->create(make_cluster_lib(), make_deck());
    server_config wc;
    wc.endpoint = "tcp:127.0.0.1:0";
    wc.workers = 2;
    workers.push_back(std::make_unique<server>(wc, *wsessions.back()));
    workers.back()->start();
    wpaths.push_back(workers.back()->bound_endpoint());
    EXPECT_NE(wpaths.back(), "tcp:127.0.0.1:0");  // port resolved
  }
  coord_config cc;
  cc.listen.endpoint = "tcp:127.0.0.1:0";
  cc.listen.workers = 2;
  cc.worker_endpoints = wpaths;
  cc.bands = bands;
  coord = std::make_unique<coordinator>(std::move(cc));
  coord->start();

  client c;
  c.connect(coord->bound_endpoint());
  EXPECT_TRUE(client::ok(c.request(msg_type::ping, 0)));
  const frame chk = c.request(msg_type::check, 0);
  ASSERT_TRUE(client::ok(chk)) << chk.payload;
  EXPECT_EQ(coord->current_keys(), single_process_keys());
}

// A sharded session's full check is the band-filtered subset of the
// unsharded check (the per-worker half of the union-of-bands argument).
TEST(ClusterShardedSession, CheckFullIsBandFilteredSubset) {
  session whole(make_cluster_lib(), make_deck());
  whole.check_full();
  const std::vector<std::string> all = whole.keys();

  session s(make_cluster_lib(), make_deck());
  s.set_shard({manual_bands()[0], 0, 2});
  s.check_full();
  const std::vector<std::string> banded = s.keys();
  ASSERT_FALSE(banded.empty());
  EXPECT_LT(banded.size(), all.size());  // upper-band violations filtered out
  for (const std::string& k : banded) {
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), k)) << k;
  }
}

// --- shard planner -----------------------------------------------------------

TEST(CoordShardPlanner, SingleShardCoversThePlane) {
  const std::vector<rect> mbrs = {{0, 0, 10, 10}, {0, 100, 10, 110}};
  const std::vector<rect> bands = engine::plan_shards(mbrs, 1);
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_EQ(bands[0].y_min, engine::shard_clamp_min);
  EXPECT_EQ(bands[0].y_max, engine::shard_clamp_max);
}

TEST(CoordShardPlanner, BandsTileAndBalance) {
  // 8 well-separated rows of one object each.
  std::vector<rect> mbrs;
  for (int i = 0; i < 8; ++i) {
    mbrs.push_back({0, i * 1000, 100, i * 1000 + 100});
  }
  const std::vector<rect> bands = engine::plan_shards(mbrs, 4);
  ASSERT_EQ(bands.size(), 4u);
  EXPECT_EQ(bands.front().y_min, engine::shard_clamp_min);
  EXPECT_EQ(bands.back().y_max, engine::shard_clamp_max);
  for (std::size_t i = 0; i + 1 < bands.size(); ++i) {
    EXPECT_EQ(static_cast<long>(bands[i].y_max) + 1, static_cast<long>(bands[i + 1].y_min))
        << "bands must tile without gap or overlap";
  }
  // Balanced: each band covers exactly two of the eight rows.
  for (std::size_t b = 0; b < bands.size(); ++b) {
    int covered = 0;
    for (const rect& m : mbrs) {
      if (bands[b].overlaps(m)) ++covered;
    }
    EXPECT_EQ(covered, 2) << "band " << b;
  }
}

TEST(CoordShardPlanner, SkewedLightRowsFirstNeverCutsLastRow) {
  // Light row below a heavy row, under its fair share: the fair-share test
  // only fires at the final row. Regression: the cut loop used to pick the
  // last row as a cut and read rows[cut + 1] out of bounds, then emit an
  // empty final band.
  std::vector<rect> mbrs;
  mbrs.push_back({0, 0, 10, 10});  // 1-member row
  for (int i = 0; i < 5; ++i) {
    mbrs.push_back({i * 100, 1000, i * 100 + 10, 1010});  // 5-member row
  }
  const std::vector<rect> bands = engine::plan_shards(mbrs, 2);
  ASSERT_EQ(bands.size(), 2u);
  EXPECT_EQ(bands.front().y_min, engine::shard_clamp_min);
  EXPECT_EQ(bands.back().y_max, engine::shard_clamp_max);
  EXPECT_EQ(static_cast<long>(bands[0].y_max) + 1, static_cast<long>(bands[1].y_min));
  // Both bands are non-empty: the cut falls between the two object rows.
  EXPECT_TRUE(bands[0].overlaps(mbrs[0]));
  EXPECT_FALSE(bands[0].overlaps(mbrs[1]));
  EXPECT_TRUE(bands[1].overlaps(mbrs[1]));
}

TEST(CoordShardPlanner, SkewedManyLightRowsBeforeHeavyRow) {
  // Several light rows then one heavy row, n=3: forced cuts must leave the
  // heavy last row to the final band instead of cutting at it.
  std::vector<rect> mbrs;
  for (int r = 0; r < 3; ++r) mbrs.push_back({0, r * 1000, 10, r * 1000 + 10});
  for (int i = 0; i < 9; ++i) {
    mbrs.push_back({i * 100, 3000, i * 100 + 10, 3010});
  }
  const std::vector<rect> bands = engine::plan_shards(mbrs, 3);
  ASSERT_EQ(bands.size(), 3u);
  for (std::size_t i = 0; i + 1 < bands.size(); ++i) {
    EXPECT_EQ(static_cast<long>(bands[i].y_max) + 1, static_cast<long>(bands[i + 1].y_min));
  }
  // Every band covers at least one object row.
  for (const rect& b : bands) {
    bool covered = false;
    for (const rect& m : mbrs) covered = covered || b.overlaps(m);
    EXPECT_TRUE(covered);
  }
}

TEST(CoordShardPlanner, MoreShardsThanRowsDegradesGracefully) {
  const std::vector<rect> mbrs = {{0, 0, 10, 10}, {0, 5, 10, 15}};  // one merged row
  const std::vector<rect> bands = engine::plan_shards(mbrs, 4);
  ASSERT_EQ(bands.size(), 1u);
}

TEST(CoordShardPlanner, LibraryOverloadUsesHierarchy) {
  const db::library lib = make_cluster_lib();
  const std::vector<rect> bands = engine::plan_shards(lib, 2);
  ASSERT_EQ(bands.size(), 2u);
  EXPECT_EQ(bands.front().y_min, engine::shard_clamp_min);
  EXPECT_EQ(bands.back().y_max, engine::shard_clamp_max);
  EXPECT_EQ(static_cast<long>(bands[0].y_max) + 1, static_cast<long>(bands[1].y_min));
  // The cut lands strictly inside the layout's y extent.
  EXPECT_GT(bands[0].y_max, 0);
  EXPECT_LT(bands[1].y_min, 1000);
}

}  // namespace
}  // namespace odrc::serve
