// Unit tests for the continuous-benchmarking harness (infra/bench_harness):
// robust statistics on adversarial samples, the noise-aware regression
// verdict, JSON round-trip through the versioned schema, report comparison,
// and an in-process end-to-end suite run.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "infra/bench_harness.hpp"

namespace bench = odrc::bench;

// ---------------------------------------------------------------------------
// Robust statistics
// ---------------------------------------------------------------------------

TEST(BenchStats, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(bench::median_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(bench::median_of({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(bench::median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(bench::median_of({}), 0.0);
}

TEST(BenchStats, MadIgnoresSingleOutlier) {
  // A cold-cache outlier 100x the median must not blow up the spread
  // estimate the way it would a standard deviation.
  const auto s = bench::summarize({1.0, 1.01, 0.99, 1.02, 100.0});
  EXPECT_DOUBLE_EQ(s.median, 1.01);
  EXPECT_LE(s.mad, 0.02);
  EXPECT_DOUBLE_EQ(s.min, 0.99);
  EXPECT_DOUBLE_EQ(s.p95, 100.0);  // the outlier still shows in the tail
}

TEST(BenchStats, ConstantSamplesHaveZeroSpread) {
  const auto s = bench::summarize({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 2.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.count, 4u);
}

TEST(BenchStats, P95NearestRank) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const auto s = bench::summarize(v);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);  // nearest-rank: ceil(0.95*100) = 95th value
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
}

// ---------------------------------------------------------------------------
// The regression verdict
// ---------------------------------------------------------------------------

namespace {
bench::stat_summary stats_of(std::vector<double> samples) {
  return bench::summarize(std::move(samples));
}
}  // namespace

TEST(BenchJudge, GenuineSlowdownRegresses) {
  const auto base = stats_of({1.00, 1.01, 0.99, 1.00, 1.02});
  const auto cur = stats_of({2.00, 2.02, 1.98, 2.01, 1.99});
  EXPECT_EQ(bench::judge(base, cur, {}), bench::verdict::regression);
}

TEST(BenchJudge, NoisyButFlatIsSimilar) {
  // Median moved ~6% but the samples wobble by ~20%: MAD slack must absorb it.
  const auto base = stats_of({1.0, 1.2, 0.8, 1.1, 0.9});
  const auto cur = stats_of({1.06, 1.3, 0.85, 1.2, 0.95});
  EXPECT_EQ(bench::judge(base, cur, {}), bench::verdict::similar);
}

TEST(BenchJudge, SpeedupIsImprovement) {
  const auto base = stats_of({2.00, 2.01, 1.99});
  const auto cur = stats_of({1.00, 1.01, 0.99});
  EXPECT_EQ(bench::judge(base, cur, {}), bench::verdict::improvement);
}

TEST(BenchJudge, IdenticalIsSimilar) {
  const auto s = stats_of({1.0, 1.1, 0.9});
  EXPECT_EQ(bench::judge(s, s, {}), bench::verdict::similar);
}

TEST(BenchJudge, SubMillisecondFloorSuppressesMicroRegressions) {
  // 2x slower but both sides sit under the absolute floor: scheduler-quantum
  // territory, never a regression on time alone.
  const auto base = stats_of({1e-4, 1.1e-4, 0.9e-4});
  const auto cur = stats_of({2e-4, 2.1e-4, 1.9e-4});
  EXPECT_EQ(bench::judge(base, cur, {}), bench::verdict::similar);
}

TEST(BenchJudge, ScaleCurrentSelfTestHookFires) {
  // The gate self-test: identical stats judged with scale_current=2 must
  // regress — this is how CI proves the comparison can actually fail.
  const auto s = stats_of({1.0, 1.01, 0.99});
  bench::compare_options o;
  o.scale_current = 2.0;
  EXPECT_EQ(bench::judge(s, s, o), bench::verdict::regression);
}

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

namespace {
bench::suite_report make_report() {
  bench::suite_report r;
  r.suite = "unit";
  r.mode = "quick";
  r.scale = 0.25;
  bench::case_result a;
  a.name = "alpha/k=1";
  a.repetitions = 3;
  a.warmup = 1;
  a.wall_s = {0.5, 0.625, 0.4375};
  a.cpu_s = {0.5, 0.6, 0.4};
  a.counters["items"] = 1024;
  a.counters["trace:kernels_launched"] = 7;
  a.finalize();
  bench::case_result b;
  b.name = "beta \"quoted\"/n=2";  // exercises string escaping
  b.error = "threw: bad\nthing";
  r.cases.push_back(std::move(a));
  r.cases.push_back(std::move(b));
  return r;
}
}  // namespace

TEST(BenchJson, RoundTripPreservesEverything) {
  const auto r = make_report();
  std::ostringstream os;
  bench::write_json(os, r);
  std::istringstream is(os.str());
  const auto back = bench::read_json(is);

  EXPECT_EQ(back.suite, "unit");
  EXPECT_EQ(back.mode, "quick");
  EXPECT_DOUBLE_EQ(back.scale, 0.25);
  ASSERT_EQ(back.cases.size(), 2u);
  const bench::case_result& a = back.cases[0];
  EXPECT_EQ(a.name, "alpha/k=1");
  EXPECT_EQ(a.repetitions, 3u);
  ASSERT_EQ(a.wall_s.size(), 3u);
  EXPECT_DOUBLE_EQ(a.wall_s[1], 0.625);  // %.17g must round-trip exactly
  EXPECT_DOUBLE_EQ(a.wall.median, r.cases[0].wall.median);
  EXPECT_DOUBLE_EQ(a.counters.at("items"), 1024);
  EXPECT_DOUBLE_EQ(a.counters.at("trace:kernels_launched"), 7);
  EXPECT_EQ(back.cases[1].name, "beta \"quoted\"/n=2");
  EXPECT_EQ(back.cases[1].error, "threw: bad\nthing");
}

TEST(BenchJson, RejectsForeignSchemaAndFutureVersion) {
  {
    std::istringstream is(R"({"schema":"not-bench","schema_version":1,"cases":[]})");
    EXPECT_THROW((void)bench::read_json(is), std::runtime_error);
  }
  {
    std::istringstream is(R"({"schema":"odrc-bench","schema_version":999,"cases":[]})");
    EXPECT_THROW((void)bench::read_json(is), std::runtime_error);
  }
  {
    std::istringstream is("{this is not json");
    EXPECT_THROW((void)bench::read_json(is), std::runtime_error);
  }
}

TEST(BenchJson, MissingFileThrows) {
  EXPECT_THROW((void)bench::read_json_file("/nonexistent/bench.json"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Report comparison
// ---------------------------------------------------------------------------

TEST(BenchCompare, IdenticalReportsAreClean) {
  const auto r = make_report();
  const auto c = bench::compare_reports(r, r, {});
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(c.regressions, 0u);
  EXPECT_TRUE(c.only_in_baseline.empty());
  EXPECT_TRUE(c.only_in_current.empty());
}

TEST(BenchCompare, ScaleCurrentInjectsRegression) {
  const auto r = make_report();
  bench::compare_options o;
  o.scale_current = 2.0;
  const auto c = bench::compare_reports(r, r, o);
  EXPECT_FALSE(c.ok());
  EXPECT_GE(c.regressions, 1u);
}

TEST(BenchCompare, TracksAddedAndRemovedCases) {
  auto base = make_report();
  auto cur = make_report();
  cur.cases[0].name = "renamed/k=1";
  const auto c = bench::compare_reports(base, cur, {});
  ASSERT_EQ(c.only_in_baseline.size(), 1u);
  EXPECT_EQ(c.only_in_baseline[0], "alpha/k=1");
  ASSERT_EQ(c.only_in_current.size(), 1u);
  EXPECT_EQ(c.only_in_current[0], "renamed/k=1");
  EXPECT_TRUE(c.ok()) << "membership drift alone must not fail the gate";
}

TEST(BenchCompare, CounterDriftIsNotedButNotFatal) {
  auto base = make_report();
  auto cur = make_report();
  cur.cases[0].counters["items"] = 2048;  // deterministic work count doubled
  const auto c = bench::compare_reports(base, cur, {});
  EXPECT_TRUE(c.ok());
  ASSERT_FALSE(c.counter_notes.empty());
  EXPECT_NE(c.counter_notes[0].find("items"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a suite registered and run in-process
// ---------------------------------------------------------------------------

TEST(BenchSuite, RunsCasesAndWritesReport) {
  const std::string json = ::testing::TempDir() + "bench_suite_e2e.json";
  const std::string json_flag = "--json=" + json;
  bench::suite s("e2e");
  const char* argv[] = {"e2e", "--quick", "--reps=2", "--warmup=0", "--no-trace-rep",
                        json_flag.c_str()};
  ASSERT_FALSE(s.parse(6, const_cast<char**>(argv)).has_value());
  EXPECT_TRUE(s.opts().quick);

  int bodies_run = 0;
  s.add("ok_case", [&](bench::case_context& ctx) {
    EXPECT_TRUE(ctx.quick());
    int reps = 0;
    while (ctx.next_rep()) ++reps;
    EXPECT_EQ(reps, 2);
    ctx.counter("work", 42);
    ++bodies_run;
  });
  s.add("failing_case", [&](bench::case_context& ctx) {
    while (ctx.next_rep()) {
    }
    ++bodies_run;
    throw std::runtime_error("intentional");
  });

  EXPECT_EQ(s.run(), 1) << "a throwing case must fail the suite";
  EXPECT_EQ(bodies_run, 2);

  const auto rep = bench::read_json_file(json);
  EXPECT_EQ(rep.suite, "e2e");
  EXPECT_EQ(rep.mode, "quick");
  ASSERT_EQ(rep.cases.size(), 2u);
  EXPECT_EQ(rep.cases[0].name, "ok_case");
  EXPECT_TRUE(rep.cases[0].error.empty());
  EXPECT_EQ(rep.cases[0].wall_s.size(), 2u);
  EXPECT_GT(rep.cases[0].wall.median, 0.0);
  EXPECT_DOUBLE_EQ(rep.cases[0].counters.at("work"), 42);
  EXPECT_EQ(rep.cases[1].name, "failing_case");
  EXPECT_EQ(rep.cases[1].error, "intentional");
  std::remove(json.c_str());
}

TEST(BenchSuite, FilterSelectsSubset) {
  bench::suite s("filter");
  const char* argv[] = {"filter", "--quick", "--reps=1", "--warmup=0", "--no-trace-rep",
                        "--no-json", "--filter=match"};
  ASSERT_FALSE(s.parse(7, const_cast<char**>(argv)).has_value());
  int matched = 0, skipped = 0;
  s.add("match_me", [&](bench::case_context& ctx) {
    while (ctx.next_rep()) {
    }
    ++matched;
  });
  s.add("other", [&](bench::case_context& ctx) {
    while (ctx.next_rep()) {
    }
    ++skipped;
  });
  EXPECT_EQ(s.run(), 0);
  EXPECT_EQ(matched, 1);
  EXPECT_EQ(skipped, 0);
}
