// Regression tests for the thread-safety fixes: phase_profiler is hammered
// from many threads (it used to hand out references into a map that other
// threads were mutating), and the engine's two multithreaded execution modes
// (host_parallel clip tasks, check_concurrent rule tasks) run with tracing
// enabled. These are the tests the CI thread-sanitizer job exists for: under
// TSan, the pre-fix profiler and any racy instrumentation fail here.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "infra/timer.hpp"
#include "infra/trace.hpp"
#include "workload/workload.hpp"

namespace odrc {
namespace {

using workload::layers;
using workload::tech;

TEST(PhaseProfilerThreads, ConcurrentAddCopyAndRead) {
  phase_profiler prof;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&prof, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      const std::string phase = "phase_" + std::to_string(t % 3);
      for (int i = 0; i < kIters; ++i) {
        prof.add(phase, 1.0);
        if (i % 64 == 0) {
          // Readers and writers interleave: phases() must return a snapshot
          // (holding a live reference into the map was the original bug),
          // and copying a profiler mid-flight must be safe.
          double sum = 0;
          for (const auto& [_, s] : prof.phases()) sum += s;
          EXPECT_LE(sum, static_cast<double>(kThreads) * kIters);
          (void)prof.total();
          (void)prof.fraction(phase);
          const phase_profiler copy(prof);
          EXPECT_LE(copy.total(), static_cast<double>(kThreads) * kIters);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  // Increments of 1.0 are exact in double: nothing may be lost or duplicated.
  double sum = 0;
  for (const auto& [_, s] : prof.phases()) sum += s;
  EXPECT_EQ(sum, static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(prof.total(), static_cast<double>(kThreads) * kIters);
}

TEST(PhaseProfilerThreads, ScopesFromWorkerThreads) {
  phase_profiler prof;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&prof] {
      for (int i = 0; i < 200; ++i) {
        auto s = prof.measure(i % 2 ? "even" : "odd");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const auto snap = prof.phases();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_GE(prof.total(), 0.0);
}

class ConcurrentDecks : public ::testing::Test {
 protected:
  ConcurrentDecks() {
    auto spec = workload::spec_for("uart", 0.5);
    spec.inject = {1, 1, 1, 1};
    gen_ = workload::generate(spec);
    deck_ = {
        rules::layer(layers::M1).spacing().greater_than(tech::wire_space),
        rules::layer(layers::M2).spacing().greater_than(tech::wire_space),
        rules::layer(layers::M3).spacing().greater_than(tech::wire_space),
    };
  }

  static std::vector<checks::violation> norm(std::vector<checks::violation> v) {
    checks::normalize_all(v);
    return v;
  }

  workload::generated gen_;
  std::vector<rules::rule> deck_;
};

TEST_F(ConcurrentDecks, HostParallelDeckMatchesSerial) {
  drc_engine serial;
  serial.add_rules(deck_);
  const auto want = norm(serial.check(gen_.lib).violations);

  drc_engine parallel({.host_parallel = true});
  parallel.add_rules(deck_);
  EXPECT_EQ(norm(parallel.check(gen_.lib).violations), want);
}

TEST_F(ConcurrentDecks, ConcurrentRuleTasksMatchSerial) {
  drc_engine serial;
  serial.add_rules(deck_);
  const auto want = norm(serial.check(gen_.lib).violations);

  drc_engine conc;
  conc.add_rules(deck_);
  EXPECT_EQ(norm(conc.check_concurrent(gen_.lib).violations), want);
}

TEST_F(ConcurrentDecks, TracingStaysSoundUnderConcurrency) {
  // Both multithreaded modes with the recorder live: worker threads emit
  // spans and read the merged reports' profilers concurrently.
  trace::recorder& rec = trace::recorder::instance();
  rec.enable();
  drc_engine parallel({.host_parallel = true});
  parallel.add_rules(deck_);
  const auto r1 = parallel.check(gen_.lib);
  drc_engine conc;
  conc.add_rules(deck_);
  const auto r2 = conc.check_concurrent(gen_.lib);
  rec.disable();

  EXPECT_EQ(norm(std::vector<checks::violation>(r1.violations)),
            norm(std::vector<checks::violation>(r2.violations)));
  const auto m = rec.metrics();
  EXPECT_FALSE(m.spans.empty());
  EXPECT_GT(m.wall_ms, 0.0);
}

}  // namespace
}  // namespace odrc
