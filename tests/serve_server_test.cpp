// Server/transport tests for odrc::serve: end-to-end request flow over a real
// Unix socket, interleaved requests from concurrent clients, and the
// connection-level handling of malformed frames. Suite names start with
// "Serve" so the TSan CI job picks them up.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "db/layout.hpp"
#include "engine/rule.hpp"
#include "serve/client.hpp"

namespace odrc::serve {
namespace {

constexpr db::layer_t M1 = 19;

db::library make_lib() {
  db::library lib("serve_srv_test");
  const db::cell_id unit = lib.add_cell("unit");
  lib.at(unit).add_rect(M1, {0, 0, 200, 30});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(M1, {0, 500, 2000, 530});
  lib.at(top).add_ref({unit, transform{{0, 0}, 0, false, 1}});
  lib.at(top).add_ref({unit, transform{{600, 0}, 0, false, 1}});
  return lib;
}

std::vector<rules::rule> make_deck() {
  return {
      rules::layer(M1).width().greater_than(18).named("M1.W"),
      rules::layer(M1).spacing().greater_than(25).named("M1.S"),
      rules::layer(M1).area().greater_than(800).named("M1.A"),
  };
}

// Pull the integer following `word` out of a status line like
// "ok fixed 0 new 3 unchanged 56".
long field(const std::string& line, const std::string& word) {
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok == word) {
      long v = -1;
      in >> v;
      return v;
    }
  }
  return -1;
}

struct ServeServer : ::testing::Test {
  session_manager sessions;
  std::unique_ptr<server> srv;
  std::string path;

  void SetUp() override {
    path = "/tmp/odrc_sv_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter_.fetch_add(1)) + ".sock";
    sessions.create(make_lib(), make_deck());
    server_config cfg;
    cfg.socket_path = path;
    cfg.workers = 2;
    srv = std::make_unique<server>(cfg, sessions);
    srv->start();
  }

  void TearDown() override {
    srv->stop();
    srv->wait();
  }

  static inline std::atomic<int> counter_{0};
};

TEST_F(ServeServer, PingAndStats) {
  client c;
  c.connect(path);
  const frame pong = c.request(msg_type::ping, 0);
  EXPECT_TRUE(client::ok(pong));
  EXPECT_EQ(pong.payload, "ok pong");
  const frame st = c.request(msg_type::stats, 0);
  EXPECT_TRUE(client::ok(st));
  EXPECT_NE(st.payload.find("requests_total"), std::string::npos);
}

// The acceptance flow of the PR: full check -> localized edit -> incremental
// recheck -> a fresh full check agrees key-for-key (diff comes back clean).
TEST_F(ServeServer, EndToEndEditRecheckMatchesFullCheck) {
  client c;
  c.connect(path);
  const frame chk = c.request(msg_type::check, 0);
  ASSERT_TRUE(client::ok(chk)) << chk.payload;
  const long total0 = field(client::status_line(chk), "total");
  ASSERT_GE(total0, 0);

  const frame ed =
      c.request(msg_type::edit, 0, "add_poly top 19 5000 5000 5010 5010\n");
  ASSERT_TRUE(client::ok(ed)) << ed.payload;
  EXPECT_EQ(field(client::status_line(ed), "applied"), 1);

  const frame rc = c.request(msg_type::recheck, 0);
  ASSERT_TRUE(client::ok(rc)) << rc.payload;
  EXPECT_EQ(field(client::status_line(rc), "full"), 0);
  const long introduced = field(client::status_line(rc), "new");
  EXPECT_GT(introduced, 0);
  EXPECT_EQ(field(client::status_line(rc), "fixed"), 0);
  EXPECT_EQ(field(client::status_line(rc), "unchanged"), total0);

  const frame dif = c.request(msg_type::diff, 0);
  ASSERT_TRUE(client::ok(dif));
  EXPECT_EQ(field(client::status_line(dif), "new"), introduced);

  // Fresh full check over the edited layout: if the incremental pass was
  // exact, the key set is identical and the new diff is clean.
  const frame chk2 = c.request(msg_type::check, 0);
  ASSERT_TRUE(client::ok(chk2));
  EXPECT_EQ(field(client::status_line(chk2), "total"), total0 + introduced);
  const frame dif2 = c.request(msg_type::diff, 0);
  ASSERT_TRUE(client::ok(dif2));
  EXPECT_EQ(field(client::status_line(dif2), "fixed"), 0);
  EXPECT_EQ(field(client::status_line(dif2), "new"), 0);
}

TEST_F(ServeServer, ErrorsAreRepliesNotDisconnects) {
  client c;
  c.connect(path);
  const frame bad = c.request(msg_type::edit, 0, "add_poly nosuchcell 19 0 0 1 1\n");
  EXPECT_FALSE(client::ok(bad));
  EXPECT_EQ(bad.payload.rfind("error", 0), 0u);
  // The connection survives a failed request.
  EXPECT_TRUE(client::ok(c.request(msg_type::ping, 0)));
}

TEST_F(ServeServer, UnknownSessionIsAnError) {
  client c;
  c.connect(path);
  const frame r = c.request(msg_type::check, 42);
  EXPECT_FALSE(client::ok(r));
}

TEST_F(ServeServer, GarbageFrameClosesOnlyThatConnection) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  const char garbage[32] = "this is not a frame header....";
  ASSERT_TRUE(write_all(fd, garbage, sizeof garbage));
  // Server closes the poisoned connection: read drains to EOF.
  char buf[256];
  while (::read(fd, buf, sizeof buf) > 0) {
  }
  ::close(fd);

  client c;
  c.connect(path);
  EXPECT_TRUE(client::ok(c.request(msg_type::ping, 0)));
  EXPECT_GE(srv->stats().protocol_errors, 1u);
}

TEST_F(ServeServer, TruncatedHeaderThenDisconnectIsHarmless) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  unsigned char hdr[header_size];
  encode_header(frame_header{}, hdr);
  ASSERT_TRUE(write_all(fd, hdr, 9));  // partial header, then vanish
  ::close(fd);

  client c;
  c.connect(path);
  EXPECT_TRUE(client::ok(c.request(msg_type::ping, 0)));
}

TEST_F(ServeServer, SessionOpenAndClose) {
  client c;
  c.connect(path);
  const frame r = c.request(msg_type::close, 1);
  EXPECT_TRUE(client::ok(r));
  EXPECT_FALSE(client::ok(c.request(msg_type::check, 1)));
}

// Interleaved requests from two concurrent clients, each pipelining several
// verbs against the shared session; every response must be well-framed, match
// its request seq (the client enforces this) and be individually sane. Run
// under TSan in CI.
TEST_F(ServeServer, ServeConcurrentClientsInterleave) {
  constexpr int kClients = 4;
  constexpr int kRequests = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      client c;
      c.connect(path);
      for (int i = 0; i < kRequests; ++i) {
        const frame r = (i + t) % 3 == 0 ? c.request(msg_type::stats, 0)
                        : (i + t) % 3 == 1 ? c.request(msg_type::ping, 0)
                                           : c.request(msg_type::check, 0);
        if (!client::ok(r)) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(srv->stats().requests_total,
            static_cast<std::uint64_t>(kClients * kRequests));
}

// Concurrent edit/recheck/check traffic against one session: the session
// mutex must serialize mutation, and every client still sees a coherent
// response stream.
TEST_F(ServeServer, ServeConcurrentEditAndCheck) {
  std::atomic<int> failures{0};
  std::thread editor([&] {
    client c;
    c.connect(path);
    for (int i = 0; i < 10; ++i) {
      const int x = 4000 + i * 40;
      std::ostringstream s;
      s << "add_poly top 19 " << x << " 4000 " << (x + 10) << " 4010\n";
      if (!client::ok(c.request(msg_type::edit, 0, s.str()))) failures.fetch_add(1);
      if (!client::ok(c.request(msg_type::recheck, 0))) failures.fetch_add(1);
    }
  });
  std::thread checker([&] {
    client c;
    c.connect(path);
    for (int i = 0; i < 10; ++i) {
      if (!client::ok(c.request(msg_type::check, 0))) failures.fetch_add(1);
      if (!client::ok(c.request(msg_type::stats, 0))) failures.fetch_add(1);
    }
  });
  editor.join();
  checker.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServeServer, ShutdownVerbStopsTheServer) {
  client c;
  c.connect(path);
  const frame r = c.request(msg_type::shutdown, 0);
  EXPECT_TRUE(client::ok(r));
  srv->wait();  // returns promptly because the verb triggered stop()
  // TearDown's stop()/wait() are now no-ops.
}

}  // namespace
}  // namespace odrc::serve
