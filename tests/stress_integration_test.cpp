// Full-scale integration spot checks: the three largest designs at their
// benchmark size, key rules, all execution strategies at once (sequential,
// device-parallel, host-parallel, flat reference), plus a whole-deck
// concurrent run. Slower than the unit suites (seconds), still well inside
// CI budgets.
#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "engine/engine.hpp"
#include "workload/workload.hpp"

namespace odrc {
namespace {

using workload::layers;
using workload::tech;

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

class FullScale : public ::testing::TestWithParam<const char*> {};

TEST_P(FullScale, AllStrategiesAgreeAtBenchmarkSize) {
  auto spec = workload::spec_for(GetParam(), 1.0);
  spec.inject = {3, 3, 3, 3};
  const auto g = workload::generate(spec);

  drc_engine seq({.run_mode = engine::mode::sequential});
  drc_engine par({.run_mode = engine::mode::parallel, .pipeline_depth = 3});
  drc_engine host({.host_parallel = true});
  baseline::flat_checker flat;

  // Spacing on the cell layer (hierarchy-heavy) and the routing layer
  // (split-object-heavy).
  for (const db::layer_t m : {layers::M1, layers::M2}) {
    const auto want = norm(flat.run_spacing(g.lib, m, tech::wire_space).violations);
    EXPECT_EQ(norm(seq.run_spacing(g.lib, m, tech::wire_space).violations), want)
        << "seq layer " << m;
    EXPECT_EQ(norm(par.run_spacing(g.lib, m, tech::wire_space).violations), want)
        << "par layer " << m;
    EXPECT_EQ(norm(host.run_spacing(g.lib, m, tech::wire_space).violations), want)
        << "host layer " << m;
  }

  // Enclosure across the hierarchy (V1 lives in masters, M1 around it).
  const auto enc = norm(flat.run_enclosure(g.lib, layers::V1, layers::M1,
                                           tech::via_enclosure).violations);
  EXPECT_EQ(norm(seq.run_enclosure(g.lib, layers::V1, layers::M1, tech::via_enclosure)
                     .violations),
            enc);
  EXPECT_EQ(norm(par.run_enclosure(g.lib, layers::V1, layers::M1, tech::via_enclosure)
                     .violations),
            enc);

  // Every injected site is found, and the hierarchy actually pays off.
  const auto r = seq.run_spacing(g.lib, layers::M1, tech::wire_space);
  EXPECT_GT(r.prune.intra_reused + r.prune.pairs_reused, 1000u) << "memoization inactive?";
}

INSTANTIATE_TEST_SUITE_P(Designs, FullScale, ::testing::Values("aes", "ethmac", "jpeg"));

TEST(FullScaleDeck, ConcurrentWholeDeckOnAes) {
  auto spec = workload::spec_for("aes", 1.0);
  spec.inject = {2, 2, 2, 2};
  const auto g = workload::generate(spec);

  drc_engine e;
  e.add_rules({
      rules::polygons().is_rectilinear().named("SHAPES"),
      rules::layer(layers::M1).width().greater_than(tech::wire_width).named("M1.W.1"),
      rules::layer(layers::M2).width().greater_than(tech::wire_width).named("M2.W.1"),
      rules::layer(layers::M3).width().greater_than(tech::wire_width).named("M3.W.1"),
      rules::layer(layers::M1).spacing().greater_than(tech::wire_space).named("M1.S.1"),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space).named("M2.S.1"),
      rules::layer(layers::M3).spacing().greater_than(tech::wire_space).named("M3.S.1"),
      rules::layer(layers::M1).area().greater_than(tech::min_area).named("M1.A.1"),
      rules::layer(layers::M2).area().greater_than(tech::min_area).named("M2.A.1"),
      rules::layer(layers::M3).area().greater_than(tech::min_area).named("M3.A.1"),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(tech::via_enclosure)
          .named("V1.M1.EN.1"),
      rules::layer(layers::V2).enclosed_by(layers::M2).greater_than(tech::via_enclosure)
          .named("V2.M2.EN.1"),
      rules::layer(layers::V2).enclosed_by(layers::M3).greater_than(tech::via_enclosure)
          .named("V2.M3.EN.1"),
  });

  const auto serial = norm(e.check(g.lib).violations);
  const auto concurrent = norm(e.check_concurrent(g.lib).violations);
  EXPECT_EQ(serial, concurrent);
  ASSERT_FALSE(serial.empty());

  // Site coverage: every injected marker is hit by at least one violation.
  for (const workload::site& s : g.sites) {
    bool hit = false;
    for (const checks::violation& v : serial) {
      if (s.marker.inflated(1).overlaps(v.e1.mbr().join(v.e2.mbr()))) {
        hit = true;
        break;
      }
    }
    EXPECT_TRUE(hit) << "missed injected " << checks::rule_kind_name(s.kind) << " site on layer "
                     << s.layer1;
  }
}

TEST(FullScaleDeterminism, RepeatedRunsAreIdentical) {
  auto spec = workload::spec_for("sha3", 1.0);
  spec.inject = {1, 1, 1, 1};
  const auto g1 = workload::generate(spec);
  const auto g2 = workload::generate(spec);
  drc_engine e;
  using workload::layers;
  EXPECT_EQ(norm(e.run_spacing(g1.lib, layers::M2, tech::wire_space).violations),
            norm(e.run_spacing(g2.lib, layers::M2, tech::wire_space).violations));
}

}  // namespace
}  // namespace odrc
