// Regression tests for the view_cache key scheme and the windowed instance
// enumeration. The cache used to pack (cell, layer) into one integer as
// (cell << 16) | uint16(layer) — injective only by accident of the current
// type widths; these tests pin the struct-key semantics that cannot alias.
#include "engine/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "db/layout.hpp"
#include "db/mbr_index.hpp"
#include "engine/rule.hpp"
#include "workload/workload.hpp"

namespace odrc::engine {
namespace {

// The retired packing, reproduced here as documentation of the failure mode.
std::uint64_t old_packed_key(std::uint64_t cell, std::int32_t layer) {
  return (cell << 16) | static_cast<std::uint16_t>(layer);
}

TEST(ViewCacheKey, OldPackingAliasedWideInputs) {
  // A cell id using bit 48 shifts off the top: its key equals cell 0's.
  EXPECT_EQ(old_packed_key(std::uint64_t{1} << 48, 3), old_packed_key(0, 3));
  // A layer wider than 16 bits truncates onto another layer of the same cell.
  EXPECT_EQ(old_packed_key(7, 0x1FFFF), old_packed_key(7, std::int32_t{0xFFFF}));
  // any_layer (-1) truncated to 0xFFFF collides with a real layer 0xFFFF.
  EXPECT_EQ(old_packed_key(7, rules::any_layer), old_packed_key(7, std::int32_t{0xFFFF}));
}

TEST(ViewCacheKey, StructKeyCannotAlias) {
  using key = view_cache::key;
  const key wide_cell = view_cache::make_key(std::uint64_t{1} << 48, 3);
  const key cell0 = view_cache::make_key(0, 3);
  EXPECT_FALSE(wide_cell == cell0);

  const key wide_layer = view_cache::make_key(7, 0x1FFFF);
  const key narrow_layer = view_cache::make_key(7, 0xFFFF);
  EXPECT_FALSE(wide_layer == narrow_layer);

  const key any = view_cache::make_key(7, rules::any_layer);
  EXPECT_FALSE(any == narrow_layer);
  EXPECT_TRUE(any == view_cache::make_key(7, rules::any_layer));

  // Distinct keys should (in practice) hash apart; equal keys must agree.
  view_cache::key_hash h;
  EXPECT_EQ(h(any), h(view_cache::make_key(7, rules::any_layer)));
  EXPECT_NE(h(wide_cell), h(cell0));
  EXPECT_NE(h(wide_layer), h(narrow_layer));
}

TEST(ViewCache, PerLayerAndAnyLayerViewsAreDistinct) {
  db::library lib;
  const db::cell_id c = lib.add_cell("c");
  lib.at(c).add_rect(1, {0, 0, 10, 10});
  lib.at(c).add_rect(2, {20, 0, 30, 10});

  view_cache views(lib);
  const master_layer_view& v1 = views.get(c, 1);
  EXPECT_EQ(v1.poly_indices.to_vector(), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(v1.mbr, (rect{0, 0, 10, 10}));

  const master_layer_view& v2 = views.get(c, 2);
  EXPECT_EQ(v2.poly_indices.to_vector(), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(v2.mbr, (rect{20, 0, 30, 10}));

  const master_layer_view& vall = views.get(c, rules::any_layer);
  EXPECT_EQ(vall.poly_indices.size(), 2u);
  EXPECT_EQ(vall.mbr, (rect{0, 0, 30, 10}));

  // References are stable across further lookups (unordered_map nodes).
  EXPECT_EQ(&views.get(c, 1), &v1);
  EXPECT_EQ(&views.get(c, 2), &v2);
}

TEST(CollectInstances, WindowPruneEqualsHaloFilterOfFullEnumeration) {
  auto spec = workload::spec_for("uart", 0.6);
  const auto g = workload::generate(spec);
  const auto tops = g.lib.top_cells();
  ASSERT_FALSE(tops.empty());

  const db::layer_t layer = workload::layers::M1;
  const coord_t inflate = workload::tech::wire_space;
  const rect window{0, 0, 2500, 1500};
  const rect halo = window.inflated(inflate);

  layout_snapshot full_snap(g.lib);
  layout_snapshot win_snap(g.lib);
  const std::vector<inst> full = collect_instances(full_snap, tops[0], layer);
  const std::vector<inst> windowed =
      collect_instances(win_snap, tops[0], layer, window, inflate);
  ASSERT_FALSE(full.empty());

  // The windowed enumeration is exactly the full enumeration filtered by
  // halo overlap — the hoisted loop-invariant halo must not change pruning.
  std::vector<std::tuple<db::cell_id, std::uint32_t, rect>> expect;
  for (const inst& in : full) {
    if (halo.overlaps(in.mbr)) expect.emplace_back(in.master, in.poly_index, in.mbr);
  }
  std::vector<std::tuple<db::cell_id, std::uint32_t, rect>> got;
  for (const inst& in : windowed) got.emplace_back(in.master, in.poly_index, in.mbr);
  EXPECT_EQ(got, expect);
  EXPECT_LT(windowed.size(), full.size());  // the window must actually prune
}

}  // namespace
}  // namespace odrc::engine
