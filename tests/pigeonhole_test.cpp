#include "infra/pigeonhole.hpp"

#include <gtest/gtest.h>

#include <random>

namespace odrc {
namespace {

TEST(Pigeonhole, EmptyDomainProducesNothing) {
  pigeonhole_merger m(0, 10);
  EXPECT_TRUE(m.merged().empty());
}

TEST(Pigeonhole, RejectsInvertedDomain) {
  EXPECT_THROW(pigeonhole_merger(5, 4), std::invalid_argument);
}

TEST(Pigeonhole, SingleInterval) {
  pigeonhole_merger m(0, 10);
  m.add(2, 5);
  const auto out = m.merged();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].lo, 2);
  EXPECT_EQ(out[0].hi, 5);
}

TEST(Pigeonhole, PaperAlgorithm1Example) {
  // Overlapping + disjoint intervals merge into a minimal cover.
  pigeonhole_merger m(0, 20);
  m.add(0, 3);
  m.add(2, 6);   // merges with [0,3]
  m.add(6, 8);   // touches [2,6] -> merges (closed intervals)
  m.add(12, 15);
  m.add(14, 14);
  const auto out = m.merged();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].lo, 0);
  EXPECT_EQ(out[0].hi, 8);
  EXPECT_EQ(out[1].lo, 12);
  EXPECT_EQ(out[1].hi, 15);
}

TEST(Pigeonhole, ContainedIntervalAbsorbed) {
  pigeonhole_merger m(0, 30);
  m.add(0, 20);
  m.add(5, 10);
  const auto out = m.merged();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].hi, 20);
}

TEST(Pigeonhole, NegativeDomain) {
  pigeonhole_merger m(-10, 10);
  m.add(-8, -3);
  m.add(-4, 2);
  m.add(5, 9);
  const auto out = m.merged();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].lo, -8);
  EXPECT_EQ(out[0].hi, 2);
  EXPECT_EQ(out[1].lo, 5);
}

TEST(Pigeonhole, ResetReuses) {
  pigeonhole_merger m(0, 10);
  m.add(0, 10);
  EXPECT_EQ(m.merged().size(), 1u);
  m.reset();
  EXPECT_TRUE(m.merged().empty());
  m.add(1, 2);
  m.add(4, 5);
  EXPECT_EQ(m.merged().size(), 2u);
}

TEST(SortMerge, MatchesOnKnownInput) {
  std::vector<interval> ivs{{0, 3, 0}, {2, 6, 1}, {10, 12, 2}};
  const auto out = merge_intervals_by_sort(ivs);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].hi, 6);
  EXPECT_EQ(out[1].lo, 10);
}

// Property: the Theta(k+N) pigeonhole algorithm and the O(k log k) sort
// algorithm produce identical covers (the paper presents them as
// interchangeable implementations of the same merge).
class MergeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MergeEquivalence, PigeonholeEqualsSort) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<coord_t> lo_d(0, 300);
  std::uniform_int_distribution<coord_t> len_d(0, 40);
  std::uniform_int_distribution<int> count_d(1, 400);

  const int k = count_d(rng);
  std::vector<interval> ivs;
  pigeonhole_merger m(0, 360);
  for (int i = 0; i < k; ++i) {
    const coord_t lo = lo_d(rng);
    const interval iv{lo, lo + len_d(rng), static_cast<std::uint32_t>(i)};
    ivs.push_back(iv);
    m.add(iv);
  }
  const auto a = m.merged();
  const auto b = merge_intervals_by_sort(ivs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
  // Cover property: every input interval lies inside exactly one output.
  for (const interval& iv : ivs) {
    int covering = 0;
    for (const interval& out : a) {
      if (out.lo <= iv.lo && iv.hi <= out.hi) ++covering;
    }
    EXPECT_EQ(covering, 1);
  }
  // Disjointness: consecutive outputs are separated by at least one slot.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i].lo, a[i - 1].hi + 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeEquivalence, ::testing::Range(1, 13));

}  // namespace
}  // namespace odrc
