// Magnified-reference tests (GDSII MAG): memoized results must NOT be reused
// across magnified instances — distances and areas scale, so a master-level
// violation can vanish at mag > 1 and a compliant master can violate rules
// expressed on derived quantities. All checkers must agree with the flat
// ground truth.
#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "engine/engine.hpp"

namespace odrc {
namespace {

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

// Master with a 10-wide bar (width violation at w=18) instantiated once
// plain and once at mag 2 (20 wide: compliant).
db::library mag_width_lib() {
  db::library lib;
  const db::cell_id m = lib.add_cell("m");
  lib.at(m).add_rect(1, {0, 0, 10, 100});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_ref({m, transform{{0, 0}, 0, false, 1}});
  lib.at(top).add_ref({m, transform{{500, 0}, 0, false, 2}});
  return lib;
}

TEST(Magnification, WidthNotReusedAcrossMag) {
  const db::library lib = mag_width_lib();
  drc_engine e;
  const auto r = e.run_width(lib, 1, 18);
  // Only the unmagnified instance violates.
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_LE(r.violations[0].e1.mbr().x_max, 10);

  baseline::flat_checker flat;
  baseline::deep_checker deep;
  EXPECT_EQ(norm(e.run_width(lib, 1, 18).violations),
            norm(flat.run_width(lib, 1, 18).violations));
  EXPECT_EQ(norm(deep.run_width(lib, 1, 18).violations),
            norm(flat.run_width(lib, 1, 18).violations));
}

TEST(Magnification, AreaScalesQuadratically) {
  // 20x20 master (area 400 < 1000, violating); at mag 2 it is 40x40 = 1600,
  // compliant.
  db::library lib;
  const db::cell_id m = lib.add_cell("m");
  lib.at(m).add_rect(1, {0, 0, 20, 20});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_ref({m, transform{{0, 0}, 0, false, 1}});
  lib.at(top).add_ref({m, transform{{500, 0}, 0, false, 2}});
  drc_engine e;
  const auto r = e.run_area(lib, 1, 1000);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].measured, 400);
  baseline::flat_checker flat;
  baseline::deep_checker deep;
  EXPECT_EQ(norm(r.violations), norm(flat.run_area(lib, 1, 1000).violations));
  EXPECT_EQ(norm(deep.run_area(lib, 1, 1000).violations),
            norm(flat.run_area(lib, 1, 1000).violations));
}

TEST(Magnification, IntraSpacingNotReused) {
  // Two bars 20 apart in the master (compliant at s=18); at mag... shrink is
  // not representable (integral mag >= 1), so test the reverse: bars 10
  // apart (violating) whose mag-2 instance is 20 apart (compliant).
  db::library lib;
  const db::cell_id m = lib.add_cell("m");
  lib.at(m).add_rect(1, {0, 0, 18, 100});
  lib.at(m).add_rect(1, {28, 0, 46, 100});  // gap 10
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_ref({m, transform{{0, 0}, 0, false, 1}});
  lib.at(top).add_ref({m, transform{{1000, 0}, 0, false, 2}});  // gap 20: ok
  drc_engine e;
  baseline::flat_checker flat;
  const auto want = norm(flat.run_spacing(lib, 1, 18).violations);
  EXPECT_EQ(norm(e.run_spacing(lib, 1, 18).violations), want);
  ASSERT_FALSE(want.empty());
  for (const auto& v : want) {
    EXPECT_LT(v.e1.mbr().x_max, 500) << "violation leaked into the magnified instance";
  }
  baseline::deep_checker deep;
  EXPECT_EQ(norm(deep.run_spacing(lib, 1, 18).violations), want);
}

TEST(Magnification, PairMemoSkipsMagnifiedPairs) {
  // A magnified instance adjacent to a plain one: the relative-placement
  // memo must not be keyed through a non-invertible (mag != 1) transform.
  db::library lib;
  const db::cell_id m = lib.add_cell("m");
  lib.at(m).add_rect(1, {0, 0, 18, 100});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_ref({m, transform{{0, 0}, 0, false, 1}});
  lib.at(top).add_ref({m, transform{{28, 0}, 0, false, 2}});  // gap 10 to the first
  drc_engine e;
  baseline::flat_checker flat;
  EXPECT_EQ(norm(e.run_spacing(lib, 1, 18).violations),
            norm(flat.run_spacing(lib, 1, 18).violations));
  EXPECT_FALSE(e.run_spacing(lib, 1, 18).violations.empty());
}

TEST(Magnification, ParallelModeHandlesMag) {
  const db::library lib = mag_width_lib();
  drc_engine par({.run_mode = engine::mode::parallel});
  drc_engine seq;
  EXPECT_EQ(norm(par.run_width(lib, 1, 18).violations),
            norm(seq.run_width(lib, 1, 18).violations));
}

}  // namespace
}  // namespace odrc
