// GDSII stream reader/writer tests: the real-number codec, full round-trips
// through the binary format, forward references, PATH expansion, and error
// reporting on malformed streams.
#include <gtest/gtest.h>

#include <sstream>

#include "gdsii/reader.hpp"
#include "gdsii/records.hpp"
#include "gdsii/writer.hpp"
#include "workload/workload.hpp"

namespace odrc::gdsii {
namespace {

// ---------------------------------------------------------------------------
// real64 codec
// ---------------------------------------------------------------------------

class Real64 : public ::testing::TestWithParam<double> {};

TEST_P(Real64, RoundTrips) {
  const double v = GetParam();
  EXPECT_NEAR(decode_real64(encode_real64(v)), v, std::abs(v) * 1e-14 + 1e-300);
}

INSTANTIATE_TEST_SUITE_P(Values, Real64,
                         ::testing::Values(0.0, 1.0, -1.0, 0.001, 1e-9, 1e-3, 1e-6, 2.0, 16.0,
                                           -1e-9, 3.14159265358979, 1e6, 1e12, -42.5, 90.0, 180.0,
                                           270.0));

TEST(Real64Codec, KnownEncodings) {
  // 1.0 = 1/16 * 16^1 -> exponent 65, mantissa 2^52.
  EXPECT_EQ(encode_real64(1.0), 0x4110000000000000ull);
  EXPECT_EQ(encode_real64(0.0), 0u);
  EXPECT_DOUBLE_EQ(decode_real64(0x4110000000000000ull), 1.0);
  // Sign bit.
  EXPECT_EQ(encode_real64(-1.0) >> 63, 1u);
}

// ---------------------------------------------------------------------------
// round-trips
// ---------------------------------------------------------------------------

db::library sample_library() {
  db::library lib("roundtrip");
  lib.user_unit = 1e-3;
  lib.meter_unit = 1e-9;
  const db::cell_id leaf = lib.add_cell("leaf");
  lib.at(leaf).add_rect(5, {0, 0, 18, 270});
  lib.at(leaf).add_polygon(
      {7, 1, polygon{{{0, 0}, {0, 40}, {10, 40}, {10, 20}, {30, 20}, {30, 0}}}, ""});
  lib.at(leaf).add_text({63, 0, {5, 5}, "pin_A"});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_ref({leaf, transform{{100, 200}, 1, true, 1}});
  lib.at(top).add_ref({leaf, transform{{-50, -60}, 0, false, 2}});
  db::cell_array a;
  a.target = leaf;
  a.trans.offset = {1000, 0};
  a.cols = 5;
  a.rows = 2;
  a.col_step = {60, 0};
  a.row_step = {0, 300};
  lib.at(top).add_array(a);
  return lib;
}

void expect_equivalent(const db::library& a, const db::library& b) {
  ASSERT_EQ(a.cell_count(), b.cell_count());
  EXPECT_NEAR(a.user_unit, b.user_unit, 1e-12);
  EXPECT_NEAR(a.meter_unit, b.meter_unit, 1e-18);
  for (db::cell_id id = 0; id < a.cell_count(); ++id) {
    const db::cell& ca = a.at(id);
    const db::cell& cb = *std::find_if(
        b.cells().begin(), b.cells().end(),
        [&](const db::cell& c) { return c.name() == ca.name(); });
    ASSERT_EQ(ca.polygons().size(), cb.polygons().size()) << ca.name();
    for (std::size_t i = 0; i < ca.polygons().size(); ++i) {
      EXPECT_EQ(ca.polygons()[i].layer, cb.polygons()[i].layer);
      EXPECT_EQ(ca.polygons()[i].poly, cb.polygons()[i].poly);
    }
    ASSERT_EQ(ca.refs().size(), cb.refs().size());
    for (std::size_t i = 0; i < ca.refs().size(); ++i) {
      EXPECT_EQ(a.at(ca.refs()[i].target).name(), b.at(cb.refs()[i].target).name());
      EXPECT_EQ(ca.refs()[i].trans, cb.refs()[i].trans);
    }
    ASSERT_EQ(ca.arrays().size(), cb.arrays().size());
    for (std::size_t i = 0; i < ca.arrays().size(); ++i) {
      EXPECT_EQ(ca.arrays()[i].cols, cb.arrays()[i].cols);
      EXPECT_EQ(ca.arrays()[i].rows, cb.arrays()[i].rows);
      EXPECT_EQ(ca.arrays()[i].col_step, cb.arrays()[i].col_step);
      EXPECT_EQ(ca.arrays()[i].row_step, cb.arrays()[i].row_step);
      EXPECT_EQ(ca.arrays()[i].trans, cb.arrays()[i].trans);
    }
    ASSERT_EQ(ca.texts().size(), cb.texts().size());
    for (std::size_t i = 0; i < ca.texts().size(); ++i) {
      EXPECT_EQ(ca.texts()[i].text, cb.texts()[i].text);
      EXPECT_EQ(ca.texts()[i].position, cb.texts()[i].position);
    }
  }
}

TEST(GdsRoundTrip, PolygonNamesSurviveViaProperties) {
  // Listing 1's third rule predicates on polygon names; they must round-trip
  // through PROPATTR/PROPVALUE.
  db::library lib("named");
  const db::cell_id c = lib.add_cell("c");
  lib.at(c).add_polygon({7, 0, polygon::from_rect({0, 0, 10, 10}), "pin_A"});
  lib.at(c).add_polygon({7, 0, polygon::from_rect({20, 0, 30, 10}), ""});
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write(lib, buf);
  const db::library back = read(buf);
  const db::cell& bc = back.at(*back.find("c"));
  ASSERT_EQ(bc.polygons().size(), 2u);
  EXPECT_EQ(bc.polygons()[0].name, "pin_A");
  EXPECT_EQ(bc.polygons()[1].name, "");
}

TEST(GdsRoundTrip, SampleLibrary) {
  const db::library lib = sample_library();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write(lib, buf);
  const db::library back = read(buf);
  expect_equivalent(lib, back);
}

TEST(GdsRoundTrip, WriterIsDeterministic) {
  const db::library lib = sample_library();
  std::ostringstream a(std::ios::binary), b(std::ios::binary);
  write(lib, a);
  write(lib, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(GdsRoundTrip, GeneratedWorkload) {
  auto spec = workload::spec_for("uart", 0.5);
  spec.inject = {1, 1, 1, 1};
  const auto g = workload::generate(spec);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write(g.lib, buf);
  const db::library back = read(buf);
  EXPECT_EQ(back.cell_count(), g.lib.cell_count());
  EXPECT_EQ(back.expanded_polygon_count(), g.lib.expanded_polygon_count());
  EXPECT_EQ(back.hierarchy_depth(), g.lib.hierarchy_depth());
}

// ---------------------------------------------------------------------------
// hand-crafted streams (forward references, PATH, errors)
// ---------------------------------------------------------------------------

class stream_builder {
 public:
  void rec(record_type t, data_type dt, std::initializer_list<std::uint8_t> payload = {}) {
    const std::size_t len = payload.size() + 4;
    put(static_cast<std::uint8_t>(len >> 8));
    put(static_cast<std::uint8_t>(len & 0xFF));
    put(static_cast<std::uint8_t>(t));
    put(static_cast<std::uint8_t>(dt));
    for (std::uint8_t b : payload) put(b);
  }

  void int16(record_type t, std::int16_t v) {
    rec(t, data_type::int16,
        {static_cast<std::uint8_t>((v >> 8) & 0xFF), static_cast<std::uint8_t>(v & 0xFF)});
  }

  void str(record_type t, std::string_view s) {
    const std::size_t padded = s.size() + (s.size() % 2);
    const std::size_t len = padded + 4;
    put(static_cast<std::uint8_t>(len >> 8));
    put(static_cast<std::uint8_t>(len & 0xFF));
    put(static_cast<std::uint8_t>(t));
    put(static_cast<std::uint8_t>(data_type::ascii));
    for (char c : s) put(static_cast<std::uint8_t>(c));
    if (s.size() % 2) put(0);
  }

  void xy(record_type, std::initializer_list<std::int32_t> vals) {
    const std::size_t len = vals.size() * 4 + 4;
    put(static_cast<std::uint8_t>(len >> 8));
    put(static_cast<std::uint8_t>(len & 0xFF));
    put(static_cast<std::uint8_t>(record_type::XY));
    put(static_cast<std::uint8_t>(data_type::int32));
    for (std::int32_t v : vals) {
      const auto u = static_cast<std::uint32_t>(v);
      put(static_cast<std::uint8_t>(u >> 24));
      put(static_cast<std::uint8_t>(u >> 16));
      put(static_cast<std::uint8_t>(u >> 8));
      put(static_cast<std::uint8_t>(u));
    }
  }

  void header() {
    int16(record_type::HEADER, 600);
    rec(record_type::BGNLIB, data_type::int16,
        {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
    str(record_type::LIBNAME, "t");
  }

  [[nodiscard]] std::stringstream stream() const {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    ss.write(reinterpret_cast<const char*>(bytes_.data()),
             static_cast<std::streamsize>(bytes_.size()));
    return ss;
  }

 private:
  void put(std::uint8_t b) { bytes_.push_back(b); }
  std::vector<std::uint8_t> bytes_;
};

TEST(GdsReader, ForwardReferenceResolves) {
  stream_builder sb;
  sb.header();
  // "top" references "leaf" before leaf is defined.
  sb.rec(record_type::BGNSTR, data_type::int16, {0, 0});
  sb.str(record_type::STRNAME, "top");
  sb.rec(record_type::SREF, data_type::no_data);
  sb.str(record_type::SNAME, "leaf");
  sb.xy(record_type::XY, {10, 20});
  sb.rec(record_type::ENDEL, data_type::no_data);
  sb.rec(record_type::ENDSTR, data_type::no_data);
  sb.rec(record_type::BGNSTR, data_type::int16, {0, 0});
  sb.str(record_type::STRNAME, "leaf");
  sb.rec(record_type::ENDSTR, data_type::no_data);
  sb.rec(record_type::ENDLIB, data_type::no_data);

  auto ss = sb.stream();
  const db::library lib = read(ss);
  const auto top = lib.find("top");
  ASSERT_TRUE(top.has_value());
  ASSERT_EQ(lib.at(*top).refs().size(), 1u);
  EXPECT_EQ(lib.at(lib.at(*top).refs()[0].target).name(), "leaf");
  EXPECT_EQ(lib.at(*top).refs()[0].trans.offset, (point{10, 20}));
}

TEST(GdsReader, PathExpandsToRectangles) {
  stream_builder sb;
  sb.header();
  sb.rec(record_type::BGNSTR, data_type::int16, {0, 0});
  sb.str(record_type::STRNAME, "c");
  sb.rec(record_type::PATH, data_type::no_data);
  sb.int16(record_type::LAYER, 3);
  sb.int16(record_type::DATATYPE, 0);
  sb.rec(record_type::WIDTH, data_type::int32, {0, 0, 0, 10});
  sb.xy(record_type::XY, {0, 0, 100, 0, 100, 50});  // L-shaped two-segment path
  sb.rec(record_type::ENDEL, data_type::no_data);
  sb.rec(record_type::ENDSTR, data_type::no_data);
  sb.rec(record_type::ENDLIB, data_type::no_data);

  auto ss = sb.stream();
  const db::library lib = read(ss);
  const db::cell& c = lib.at(*lib.find("c"));
  ASSERT_EQ(c.polygons().size(), 2u);
  EXPECT_EQ(c.polygons()[0].poly.mbr(), (rect{0, -5, 100, 5}));
  EXPECT_EQ(c.polygons()[1].poly.mbr(), (rect{95, 0, 105, 50}));
}

TEST(GdsReader, BoxElementKeptAsGeometry) {
  stream_builder sb;
  sb.header();
  sb.rec(record_type::BGNSTR, data_type::int16, {0, 0});
  sb.str(record_type::STRNAME, "c");
  sb.rec(record_type::BOX, data_type::no_data);
  sb.int16(record_type::LAYER, 4);
  sb.int16(record_type::BOXTYPE, 0);
  sb.xy(record_type::XY, {0, 0, 0, 10, 20, 10, 20, 0, 0, 0});
  sb.rec(record_type::ENDEL, data_type::no_data);
  sb.rec(record_type::ENDSTR, data_type::no_data);
  sb.rec(record_type::ENDLIB, data_type::no_data);
  auto ss = sb.stream();
  const db::library lib = read(ss);
  const db::cell& c = lib.at(*lib.find("c"));
  ASSERT_EQ(c.polygons().size(), 1u);
  EXPECT_EQ(c.polygons()[0].layer, 4);
  EXPECT_EQ(c.polygons()[0].poly.mbr(), (rect{0, 0, 20, 10}));
  EXPECT_TRUE(c.polygons()[0].poly.is_clockwise());
}

TEST(GdsReader, ErrorOnMissingHeader) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss.write("\x00\x04\x04\x00", 4);  // ENDLIB first
  EXPECT_THROW(read(ss), parse_error);
}

TEST(GdsReader, ErrorOnTruncation) {
  const db::library lib = sample_library();
  std::ostringstream full(std::ios::binary);
  write(lib, full);
  const std::string bytes = full.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  EXPECT_THROW(read(cut), parse_error);
}

TEST(GdsReader, ErrorOnUnknownReference) {
  stream_builder sb;
  sb.header();
  sb.rec(record_type::BGNSTR, data_type::int16, {0, 0});
  sb.str(record_type::STRNAME, "top");
  sb.rec(record_type::SREF, data_type::no_data);
  sb.str(record_type::SNAME, "ghost");
  sb.xy(record_type::XY, {0, 0});
  sb.rec(record_type::ENDEL, data_type::no_data);
  sb.rec(record_type::ENDSTR, data_type::no_data);
  sb.rec(record_type::ENDLIB, data_type::no_data);
  auto ss = sb.stream();
  EXPECT_THROW(read(ss), parse_error);
}

TEST(GdsReader, ErrorOnTinyBoundary) {
  stream_builder sb;
  sb.header();
  sb.rec(record_type::BGNSTR, data_type::int16, {0, 0});
  sb.str(record_type::STRNAME, "c");
  sb.rec(record_type::BOUNDARY, data_type::no_data);
  sb.int16(record_type::LAYER, 1);
  sb.int16(record_type::DATATYPE, 0);
  sb.xy(record_type::XY, {0, 0, 1, 1});  // 2 points: degenerate
  sb.rec(record_type::ENDEL, data_type::no_data);
  sb.rec(record_type::ENDSTR, data_type::no_data);
  sb.rec(record_type::ENDLIB, data_type::no_data);
  auto ss = sb.stream();
  EXPECT_THROW(read(ss), parse_error);
}

TEST(GdsReader, ParseErrorCarriesOffset) {
  try {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    ss.write("\x00\x04\x04\x00", 4);
    (void)read(ss);
    FAIL();
  } catch (const parse_error& e) {
    EXPECT_NE(std::string{e.what()}.find("byte"), std::string::npos);
  }
}

}  // namespace
}  // namespace odrc::gdsii
