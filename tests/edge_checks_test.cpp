// Unit tests for the shared edge-pair predicates: the single source of truth
// for what constitutes a width / spacing / enclosure violation.
#include "checks/edge_checks.hpp"

#include <gtest/gtest.h>

namespace odrc::checks {
namespace {

// Convention reminder (clockwise polygons, +y up, interior right of edge):
//   east edge:  interior below;  west edge:  interior above
//   north edge: interior right;  south edge: interior left

TEST(WidthFacing, HorizontalInteriorBetween) {
  const edge east_top{{0, 20}, {10, 20}};   // interior below
  const edge west_bot{{10, 0}, {0, 0}};     // interior above
  EXPECT_TRUE(is_width_facing(east_top, west_bot));
  EXPECT_TRUE(is_width_facing(west_bot, east_top));
  // Swapped levels: exterior between them -> spacing configuration.
  const edge east_bot{{0, 0}, {10, 0}};
  const edge west_top{{10, 20}, {0, 20}};
  EXPECT_FALSE(is_width_facing(east_bot, west_top));
  EXPECT_TRUE(is_space_facing(east_bot, west_top));
}

TEST(WidthFacing, VerticalInteriorBetween) {
  const edge north_left{{0, 0}, {0, 10}};    // interior right
  const edge south_right{{20, 10}, {20, 0}}; // interior left
  EXPECT_TRUE(is_width_facing(north_left, south_right));
  EXPECT_FALSE(is_space_facing(north_left, south_right));
  // C-shape arms: south on the left, north on the right -> gap is exterior.
  const edge south_left{{0, 10}, {0, 0}};
  const edge north_right{{20, 0}, {20, 10}};
  EXPECT_FALSE(is_width_facing(south_left, north_right));
  EXPECT_TRUE(is_space_facing(south_left, north_right));
}

TEST(WidthFacing, RequiresProjectionOverlap) {
  const edge a{{0, 20}, {10, 20}};
  const edge disjoint{{15, 0}, {11, 0}};
  EXPECT_FALSE(is_width_facing(a, disjoint));
  const edge touching{{20, 0}, {10, 0}};  // projections share x=10 only
  EXPECT_FALSE(is_width_facing(a, touching));
}

TEST(WidthFacing, RejectsParallelSameDirection) {
  const edge a{{0, 20}, {10, 20}};
  const edge b{{0, 0}, {10, 0}};  // both east
  EXPECT_FALSE(is_width_facing(a, b));
  EXPECT_FALSE(is_space_facing(a, b));
}

TEST(CheckWidthPair, ViolatesBelowMinimum) {
  const edge top{{0, 10}, {10, 10}};
  const edge bot{{10, 0}, {0, 0}};
  EXPECT_EQ(check_width_pair(top, bot, 18), 10);
  EXPECT_FALSE(check_width_pair(top, bot, 10).has_value());  // exactly min: ok
  EXPECT_EQ(check_width_pair(top, bot, 11), 10);
}

TEST(CheckSpacePair, ParallelFacingUsesProjectedDistance) {
  const edge top_shape_bottom{{10, 28}, {0, 28}};  // west: interior above
  const edge bot_shape_top{{0, 0}, {10, 0}};       // east: interior below
  EXPECT_EQ(check_space_pair(top_shape_bottom, bot_shape_top, 30), 28 * 28);
  EXPECT_FALSE(check_space_pair(top_shape_bottom, bot_shape_top, 28).has_value());
}

TEST(CheckSpacePair, AbuttingShapesAreNotViolations) {
  // Two rectangles sharing a boundary: collinear anti-parallel edges at the
  // same level (distance 0) — abutment, not a spacing violation.
  const edge a{{10, 0}, {10, 10}};   // north at x=10
  const edge b{{10, 10}, {10, 0}};   // south at x=10
  EXPECT_FALSE(check_space_pair(a, b, 18).has_value());
}

TEST(CheckSpacePair, CornerToCornerEuclidean) {
  // Diagonal proximity between perpendicular edges of different shapes.
  const edge right_of_a{{10, 10}, {10, 0}};   // vertical at x=10
  const edge bottom_of_b{{13, 14}, {23, 14}}; // horizontal starting at (13,14)
  // Closest points (10,10) and (13,14): distance 5.
  EXPECT_EQ(check_space_pair(right_of_a, bottom_of_b, 6), 25);
  EXPECT_FALSE(check_space_pair(right_of_a, bottom_of_b, 5).has_value());
}

TEST(CheckSpacePairAny, SamePolygonOnlyFlagsNotches) {
  // Notch: exterior-facing parallel pair of the same polygon.
  const edge notch_left{{10, 0}, {10, 20}};   // north at x=10, interior right?
  const edge notch_right{{20, 20}, {20, 0}};  // south at x=20, interior left?
  // north at 10, south at 20: interior between -> width config, not a notch.
  EXPECT_FALSE(check_space_pair_any(notch_left, notch_right, true, 18).has_value());
  // Reversed: south at x=10 (interior left, i.e. x<10), north at x=20
  // (interior right): gap [10,20] is exterior -> notch.
  const edge s{{10, 20}, {10, 0}};
  const edge n{{20, 0}, {20, 20}};
  EXPECT_EQ(check_space_pair_any(s, n, true, 18), 100);
  // Same pair across different polygons is plain spacing.
  EXPECT_EQ(check_space_pair_any(s, n, false, 18), 100);
  // Same-polygon corner proximity must NOT be flagged.
  const edge h{{0, 0}, {10, 0}};
  const edge v{{12, 2}, {12, 12}};
  EXPECT_TRUE(check_space_pair_any(h, v, false, 18).has_value());
  EXPECT_FALSE(check_space_pair_any(h, v, true, 18).has_value());
}

TEST(CheckEnclosurePair, MarginPerDirection) {
  // Via top edge (east, interior below) at y=10; metal top edge at y=13.
  const edge via_top{{0, 10}, {8, 10}};
  const edge metal_top{{-5, 13}, {20, 13}};
  EXPECT_EQ(check_enclosure_pair(via_top, metal_top, 5), 3);
  EXPECT_FALSE(check_enclosure_pair(via_top, metal_top, 3).has_value());

  // Bottom side: west edges.
  const edge via_bot{{8, 2}, {0, 2}};
  const edge metal_bot{{20, 0}, {-5, 0}};
  EXPECT_EQ(check_enclosure_pair(via_bot, metal_bot, 5), 2);

  // Left side: north edges (outward normal -x).
  const edge via_left{{0, 2}, {0, 10}};
  const edge metal_left{{-4, 0}, {-4, 13}};
  EXPECT_EQ(check_enclosure_pair(via_left, metal_left, 5), 4);

  // Right side: south edges.
  const edge via_right{{8, 10}, {8, 2}};
  const edge metal_right{{20, 13}, {20, 0}};
  EXPECT_FALSE(check_enclosure_pair(via_right, metal_right, 5).has_value());  // margin 12 ok
  EXPECT_EQ(check_enclosure_pair(via_right, metal_right, 13), 12);
}

TEST(CheckEnclosurePair, WrongSideNotReported) {
  // Metal edge on the interior side of the via edge: negative margin is the
  // containment checker's business, not the margin predicate's.
  const edge via_top{{0, 10}, {8, 10}};
  const edge metal_below{{-5, 8}, {20, 8}};
  EXPECT_FALSE(check_enclosure_pair(via_top, metal_below, 5).has_value());
}

TEST(CheckEnclosurePair, RequiresSameDirectionAndOverlap) {
  const edge via_top{{0, 10}, {8, 10}};
  const edge metal_west{{20, 13}, {-5, 13}};  // west, anti-parallel
  EXPECT_FALSE(check_enclosure_pair(via_top, metal_west, 5).has_value());
  const edge metal_far{{30, 13}, {40, 13}};  // no projection overlap
  EXPECT_FALSE(check_enclosure_pair(via_top, metal_far, 5).has_value());
}

TEST(ViolationFactories, PopulateFields) {
  const edge a{{0, 0}, {10, 0}}, b{{10, 5}, {0, 5}};
  const violation w = make_width_violation(19, a, b, 5);
  EXPECT_EQ(w.kind, rule_kind::width);
  EXPECT_EQ(w.layer1, 19);
  EXPECT_EQ(w.measured, 25);
  const violation s = make_space_violation(20, a, b, 49);
  EXPECT_EQ(s.kind, rule_kind::spacing);
  EXPECT_EQ(s.measured, 49);
  const violation e = make_enclosure_violation(21, 19, a, b, 3);
  EXPECT_EQ(e.kind, rule_kind::enclosure);
  EXPECT_EQ(e.layer1, 21);
  EXPECT_EQ(e.layer2, 19);
}

TEST(Normalization, CanonicalizesEdgeOrder) {
  const edge a{{0, 0}, {10, 0}}, b{{10, 5}, {0, 5}};
  const violation v1 = make_space_violation(1, a, b, 25);
  const violation v2 = make_space_violation(1, b.reversed(), a.reversed(), 25);
  EXPECT_EQ(normalized(v1), normalized(v2));

  std::vector<violation> vs{v1, v2, v1};
  normalize_all(vs);
  EXPECT_EQ(vs.size(), 1u);
}

TEST(Normalization, EnclosurePreservesInnerOuterOrder) {
  const edge inner{{0, 0}, {8, 0}}, outer{{-5, 3}, {20, 3}};
  const violation v = make_enclosure_violation(21, 19, inner, outer, 3);
  const violation n = normalized(v);
  EXPECT_EQ(n.e1.from.y, 0);  // inner stays first
  EXPECT_EQ(n.e2.from.y, 3);
}

}  // namespace
}  // namespace odrc::checks
