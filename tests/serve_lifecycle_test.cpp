// Connection-lifecycle regression tests for odrc::serve::server. Each test
// pins one of the bugs fixed by the lifecycle sweep and fails on the old
// code:
//  - client EOF used to SHUT_RDWR the connection, dropping the responses to
//    requests it had already pipelined;
//  - a transient accept() failure (EMFILE/ENFILE/ECONNABORTED) used to break
//    the accept loop permanently;
//  - one reader std::thread per connection ever accepted accumulated until
//    shutdown.
// Suite name starts with "Serve" so the TSan CI job picks it up.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "db/layout.hpp"
#include "engine/rule.hpp"
#include "serve/client.hpp"
#include "serve/transport.hpp"

namespace odrc::serve {
namespace {

constexpr db::layer_t M1 = 19;

db::library make_lib() {
  db::library lib("serve_lifecycle_test");
  const db::cell_id unit = lib.add_cell("unit");
  lib.at(unit).add_rect(M1, {0, 0, 200, 30});
  const db::cell_id top = lib.add_cell("top");
  lib.at(top).add_rect(M1, {0, 500, 2000, 530});
  lib.at(top).add_ref({unit, transform{{0, 0}, 0, false, 1}});
  lib.at(top).add_ref({unit, transform{{600, 0}, 0, false, 1}});
  return lib;
}

std::vector<rules::rule> make_deck() {
  return {
      rules::layer(M1).width().greater_than(18).named("M1.W"),
      rules::layer(M1).spacing().greater_than(25).named("M1.S"),
  };
}

struct ServeLifecycle : ::testing::Test {
  session_manager sessions;
  std::unique_ptr<server> srv;
  std::string path;

  void start_server(std::size_t workers) {
    path = "/tmp/odrc_lc_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter_.fetch_add(1)) + ".sock";
    sessions.create(make_lib(), make_deck());
    server_config cfg;
    cfg.socket_path = path;
    cfg.workers = workers;
    srv = std::make_unique<server>(cfg, sessions);
    srv->start();
  }

  void TearDown() override {
    if (srv) {
      srv->stop();
      srv->wait();
    }
  }

  static inline std::atomic<int> counter_{0};
};

frame make_request(msg_type type, std::uint16_t seq) {
  frame f;
  f.header.type = static_cast<std::uint8_t>(type);
  f.header.seq = seq;
  f.header.session = 0;
  return f;
}

// A client that pipelines a slow check plus a burst of pings and then
// half-closes its write side (EOF at the server) must still receive every
// response. The old reader answered EOF with SHUT_RDWR, discarding whatever
// the single worker had not yet written.
TEST_F(ServeLifecycle, PipelinedResponsesSurviveClientEof) {
  start_server(/*workers=*/1);
  const int fd = transport::connect_endpoint(path);
  ASSERT_GE(fd, 0);

  constexpr std::uint16_t kPings = 8;
  ASSERT_TRUE(write_frame(fd, make_request(msg_type::check, 1)));
  for (std::uint16_t i = 0; i < kPings; ++i) {
    ASSERT_TRUE(write_frame(fd, make_request(msg_type::ping, static_cast<std::uint16_t>(2 + i))));
  }
  // Client is done sending: the server's reader sees EOF while the check is
  // still running and the pings are still queued behind it.
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  std::vector<frame> responses;
  for (;;) {
    std::optional<frame> f = read_frame(fd);
    if (!f) break;
    EXPECT_TRUE(client::ok(*f)) << f->payload;
    responses.push_back(*std::move(f));
  }
  ::close(fd);

  ASSERT_EQ(responses.size(), static_cast<std::size_t>(1 + kPings));
  for (std::uint16_t i = 0; i < 1 + kPings; ++i) {
    EXPECT_EQ(responses[i].header.seq, i + 1);  // in-order: one worker drains FIFO
  }
}

// accept() failing with EMFILE must not kill the accept loop: once fds free
// up, the pending connection is accepted and served. The old loop treated
// every accept failure as fatal.
TEST_F(ServeLifecycle, AcceptLoopSurvivesFdExhaustion) {
  rlimit orig{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &orig), 0);
  rlimit lowered = orig;
  lowered.rlim_cur = orig.rlim_max < 256 ? orig.rlim_max : 256;  // keep the hoard cheap
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &lowered), 0);

  start_server(/*workers=*/1);

  std::vector<int> hoard;
  const auto release_all = [&] {
    for (const int h : hoard) ::close(h);
    hoard.clear();
  };

  // Exhaust the fd table, keeping exactly one slot for the client socket.
  for (;;) {
    const int h = ::open("/dev/null", O_RDONLY);
    if (h < 0) break;
    hoard.push_back(h);
  }
  ASSERT_GE(hoard.size(), 4u);
  ::close(hoard.back());
  hoard.pop_back();

  // The connect lands in the backlog; the server's accept() gets EMFILE.
  int fd = -1;
  try {
    fd = transport::connect_endpoint(path);
  } catch (const std::exception&) {
    release_all();
    ::setrlimit(RLIMIT_NOFILE, &orig);
    FAIL() << "client connect failed with one free fd";
  }
  ASSERT_TRUE(write_frame(fd, make_request(msg_type::ping, 1)));

  // Let the accept loop hit the error path at least once, then recover.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (srv->stats().accept_errors == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(srv->stats().accept_errors, 1u);
  release_all();

  pollfd pf{fd, POLLIN, 0};
  const int pr = ::poll(&pf, 1, 10000);
  ASSERT_EQ(pr, 1) << "server never answered after fds freed (accept loop dead?)";
  const std::optional<frame> pong = read_frame(fd);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->payload, "ok pong");
  ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &orig), 0);
}

// Finished reader threads are reaped while the server runs; connection churn
// must not accumulate one live thread per connection ever accepted.
TEST_F(ServeLifecycle, ReaderThreadsAreReaped) {
  start_server(/*workers=*/2);
  constexpr int kChurn = 50;
  for (int i = 0; i < kChurn; ++i) {
    client c;
    c.connect(path);
    ASSERT_TRUE(client::ok(c.request(msg_type::ping, 0)));
  }
  EXPECT_GE(srv->stats().accepted_connections, static_cast<std::uint64_t>(kChurn));

  // Reaping rides the accept thread's self-pipe; give it a moment.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  server_stats_snapshot st = srv->stats();
  while ((st.reader_threads > 5 || st.connections > 5) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    st = srv->stats();
  }
  EXPECT_LE(st.reader_threads, 5u);
  EXPECT_LE(st.connections, 5u);
}

}  // namespace
}  // namespace odrc::serve
