// GDSII reader robustness: a parser fed hostile input must fail with
// parse_error, never crash, hang or silently accept garbage.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "gdsii/reader.hpp"
#include "gdsii/writer.hpp"
#include "workload/workload.hpp"

namespace odrc::gdsii {
namespace {

std::string valid_stream_bytes() {
  auto spec = workload::spec_for("uart", 0.3);
  spec.inject = {1, 0, 0, 0};
  const auto g = workload::generate(spec);
  std::ostringstream out(std::ios::binary);
  write(g.lib, out);
  return out.str();
}

db::library read_bytes(const std::string& bytes) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return read(ss);
}

// Every proper prefix of a valid stream must raise parse_error (the stream
// ends before ENDLIB or mid-record).
class TruncationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TruncationFuzz, PrefixesAlwaysThrow) {
  const std::string bytes = valid_stream_bytes();
  std::mt19937 rng(static_cast<std::uint32_t>(GetParam()));
  std::uniform_int_distribution<std::size_t> cut(0, bytes.size() - 1);
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = cut(rng);
    EXPECT_THROW((void)read_bytes(bytes.substr(0, n)), parse_error) << "cut at " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TruncationFuzz, ::testing::Range(1, 4));

// Random single-byte corruption: the reader must either produce a library
// or throw parse_error / runtime_error — never crash. (Some corruptions are
// benign: flipping a coordinate byte yields a different but valid layout.)
class CorruptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionFuzz, NeverCrashes) {
  const std::string bytes = valid_stream_bytes();
  std::mt19937 rng(static_cast<std::uint32_t>(GetParam()) * 7919);
  std::uniform_int_distribution<std::size_t> pos(0, bytes.size() - 1);
  std::uniform_int_distribution<int> val(0, 255);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 300; ++i) {
    std::string mutated = bytes;
    mutated[pos(rng)] = static_cast<char>(val(rng));
    try {
      const db::library lib = read_bytes(mutated);
      (void)lib.cell_count();
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;
    }
  }
  // Both outcomes occur over 300 mutations: some bytes are payload (benign),
  // some are structure (rejected).
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz, ::testing::Range(1, 4));

TEST(GdsFuzz, RandomGarbageRejected) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> val(0, 255);
  for (int i = 0; i < 100; ++i) {
    std::string garbage(128, '\0');
    for (char& c : garbage) c = static_cast<char>(val(rng));
    EXPECT_THROW((void)read_bytes(garbage), std::exception);
  }
}

TEST(GdsFuzz, EmptyStreamRejected) {
  EXPECT_THROW((void)read_bytes(""), parse_error);
}

TEST(GdsFuzz, HeaderOnlyRejected) {
  // Valid HEADER record, then EOF: no ENDLIB.
  const std::string header{"\x00\x06\x00\x02\x02\x58", 6};
  EXPECT_THROW((void)read_bytes(header), parse_error);
}

}  // namespace
}  // namespace odrc::gdsii
