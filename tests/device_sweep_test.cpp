// Device executor tests: the brute-force and two-kernel-sweep executors must
// agree with each other and with the host polygon drivers, including under
// output-buffer overflow and for both sweep axes.
#include "sweep/device_sweep.hpp"

#include <gtest/gtest.h>

#include <random>

#include "checks/poly_checks.hpp"

namespace odrc::sweep {
namespace {

device::stream& test_stream() {
  static device::stream s(device::context::instance());
  return s;
}

std::vector<checks::violation> run_device(std::span<const packed_edge> edges,
                                          const device_check_config& cfg, executor_choice choice,
                                          device_check_stats* stats_out = nullptr) {
  std::vector<checks::violation> out;
  device_check_stats stats;
  device_check_edges_with(test_stream(), edges, cfg, choice, out, stats);
  checks::normalize_all(out);
  if (stats_out) *stats_out = stats;
  return out;
}

// Random rectilinear "wire field": rectangles with varied sizes/positions.
std::vector<polygon> random_rects(int n, std::uint32_t seed, coord_t span = 2000) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::uniform_int_distribution<coord_t> size(5, 120);
  std::vector<polygon> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    out.push_back(polygon::from_rect({x, y, x + size(rng), y + size(rng)}));
  }
  return out;
}

std::vector<packed_edge> pack(std::span<const polygon> polys, std::uint16_t group = 0,
                              std::uint32_t id_base = 0) {
  std::vector<packed_edge> edges;
  for (std::size_t i = 0; i < polys.size(); ++i) {
    pack_polygon_edges(polys[i], id_base + static_cast<std::uint32_t>(i), group, edges);
  }
  return edges;
}

TEST(DeviceSweep, EmptyInput) {
  device_check_stats stats;
  std::vector<checks::violation> out;
  device_check_edges(test_stream(), {}, {pair_check::spacing, 18, 1, 1}, out, stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.edges_uploaded, 0u);
}

TEST(DeviceSweep, PackPolygonEdges) {
  std::vector<packed_edge> edges;
  pack_polygon_edges(polygon::from_rect({0, 0, 10, 20}), 7, 1, edges);
  ASSERT_EQ(edges.size(), 4u);
  for (const packed_edge& e : edges) {
    EXPECT_EQ(e.poly, 7u);
    EXPECT_EQ(e.group, 1);
  }
  EXPECT_EQ(edges[0].y_lo(), 0);
  EXPECT_EQ(edges[0].y_hi(), 20);
  EXPECT_EQ(edges[0].x_lo(), 0);
  EXPECT_EQ(edges[0].key_lo(true), edges[0].x_lo());
  EXPECT_EQ(edges[0].key_lo(false), edges[0].y_lo());
}

TEST(DeviceSweep, SpacingMatchesHostDriver) {
  const auto polys = random_rects(60, 42);
  const auto edges = pack(polys);
  const device_check_config cfg{pair_check::spacing, 18, 5, 5};

  // Host reference: all polygon pairs + notches via the shared drivers.
  std::vector<checks::violation> expected;
  checks::check_stats cs;
  for (std::size_t i = 0; i < polys.size(); ++i) {
    checks::check_spacing_notch(polys[i], 5, 18, expected, cs);
    for (std::size_t j = i + 1; j < polys.size(); ++j) {
      checks::check_spacing(polys[i], polys[j], 5, 18, expected, cs);
    }
  }
  checks::normalize_all(expected);

  EXPECT_EQ(run_device(edges, cfg, executor_choice::brute), expected);
  EXPECT_EQ(run_device(edges, cfg, executor_choice::sweep), expected);
}

TEST(DeviceSweep, WidthMatchesHostDriver) {
  // Mix of narrow and wide bars plus an L-shape.
  std::vector<polygon> polys{
      polygon::from_rect({0, 0, 10, 100}),
      polygon::from_rect({50, 0, 68, 100}),
      polygon::from_rect({100, 0, 117, 40}),
      polygon{{{200, 0}, {200, 100}, {210, 100}, {210, 30}, {260, 30}, {260, 0}}},
  };
  const auto edges = pack(polys);
  const device_check_config cfg{pair_check::width, 18, 5, 5};

  std::vector<checks::violation> expected;
  checks::check_stats cs;
  for (const polygon& p : polys) checks::check_width(p, 5, 18, expected, cs);
  checks::normalize_all(expected);
  ASSERT_FALSE(expected.empty());

  EXPECT_EQ(run_device(edges, cfg, executor_choice::brute), expected);
  EXPECT_EQ(run_device(edges, cfg, executor_choice::sweep), expected);
}

TEST(DeviceSweep, EnclosureMatchesHostDriver) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<coord_t> pos(0, 1000);
  std::vector<polygon> vias, metals;
  for (int i = 0; i < 40; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    vias.push_back(polygon::from_rect({x, y, x + 8, y + 8}));
    // Metal with randomized (sometimes violating) margins.
    const coord_t ml = static_cast<coord_t>(x - (i % 7));
    metals.push_back(polygon::from_rect({ml, y - 5, x + 13, y + 13}));
  }
  auto edges = pack(vias, 0, 0);
  auto metal_edges = pack(metals, 1, static_cast<std::uint32_t>(vias.size()));
  edges.insert(edges.end(), metal_edges.begin(), metal_edges.end());
  const device_check_config cfg{pair_check::enclosure, 5, 21, 19};

  std::vector<checks::violation> expected;
  checks::check_stats cs;
  for (const polygon& v : vias) {
    for (const polygon& m : metals) {
      checks::check_enclosure(v, m, 21, 19, 5, expected, cs);
    }
  }
  checks::normalize_all(expected);
  ASSERT_FALSE(expected.empty());

  EXPECT_EQ(run_device(edges, cfg, executor_choice::brute), expected);
  EXPECT_EQ(run_device(edges, cfg, executor_choice::sweep), expected);
}

TEST(DeviceSweep, AxesProduceIdenticalResults) {
  const auto polys = random_rects(120, 99);
  const auto edges = pack(polys);
  device_check_config ycfg{pair_check::spacing, 18, 5, 5, sweep_axis::y};
  device_check_config xcfg{pair_check::spacing, 18, 5, 5, sweep_axis::x};
  EXPECT_EQ(run_device(edges, ycfg, executor_choice::sweep),
            run_device(edges, xcfg, executor_choice::sweep));
}

TEST(DeviceSweep, OverflowRetryGrowsBuffer) {
  // A dense field with > 256 violations exercises the grow-and-relaunch
  // path (initial device buffer capacity is 256).
  std::vector<polygon> polys;
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 10; ++j) {
      // 20-wide bars with a 10 gap horizontally: every adjacent pair
      // violates spacing 18 several times.
      const coord_t x = static_cast<coord_t>(i * 30);
      const coord_t y = static_cast<coord_t>(j * 200);
      polys.push_back(polygon::from_rect({x, y, x + 20, y + 100}));
    }
  }
  const auto edges = pack(polys);
  device_check_stats stats;
  const auto out =
      run_device(edges, {pair_check::spacing, 18, 5, 5}, executor_choice::sweep, &stats);
  EXPECT_GT(out.size(), 256u);
  EXPECT_GE(stats.overflow_retries, 1u);

  // And the brute executor finds the same set.
  EXPECT_EQ(run_device(edges, {pair_check::spacing, 18, 5, 5}, executor_choice::brute), out);
}

TEST(DeviceSweep, AutomaticChoiceThreshold) {
  const auto small = pack(random_rects(5, 1));
  const auto big = pack(random_rects(200, 2));
  device_check_stats s1, s2;
  std::vector<checks::violation> out;
  device_check_edges(test_stream(), small, {pair_check::spacing, 18, 5, 5}, out, s1);
  EXPECT_EQ(s1.brute_launches, 1u);
  EXPECT_EQ(s1.sweep_launches, 0u);
  device_check_edges(test_stream(), big, {pair_check::spacing, 18, 5, 5}, out, s2);
  EXPECT_EQ(s2.brute_launches, 0u);
  EXPECT_GE(s2.sweep_launches, 1u);
}

TEST(DeviceSweep, AsyncOverlapsHostWork) {
  const auto polys = random_rects(300, 5);
  auto edges = pack(polys);
  const device_check_config cfg{pair_check::spacing, 18, 5, 5};
  async_edge_check check(test_stream(), std::move(edges), cfg);
  // Host-side work here runs while the device processes the batch.
  int host_work = 0;
  for (int i = 0; i < 1000; ++i) host_work += i;
  EXPECT_EQ(host_work, 499500);
  std::vector<checks::violation> out;
  device_check_stats stats;
  check.finish(out, stats);
  EXPECT_GT(stats.edge_pairs_tested, 0u);
}

TEST(DeviceSweep, FinishOnEmptyBatchIsNoop) {
  async_edge_check check(test_stream(), {}, {pair_check::width, 18, 1, 1});
  std::vector<checks::violation> out;
  device_check_stats stats;
  check.finish(out, stats);
  check.finish(out, stats);  // second call is also safe
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace odrc::sweep
