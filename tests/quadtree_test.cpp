// Region quadtree tests, mirroring the R-tree suite: query correctness vs
// brute force, pair equivalence with the sweepline, structural sanity and
// engine integration.
#include "geo/quadtree.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "engine/engine.hpp"
#include "sweep/sweepline.hpp"
#include "workload/workload.hpp"

namespace odrc::geo {
namespace {

std::vector<rect> random_rects(int n, std::uint32_t seed, coord_t span = 5000) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<coord_t> pos(0, span);
  std::uniform_int_distribution<coord_t> size(1, 150);
  std::vector<rect> out;
  for (int i = 0; i < n; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    out.push_back({x, y, static_cast<coord_t>(x + size(rng)), static_cast<coord_t>(y + size(rng))});
  }
  return out;
}

TEST(Quadtree, EmptyAndSingle) {
  const quadtree empty({});
  int hits = 0;
  empty.query(rect{-10, -10, 10, 10}, [&](std::uint32_t) { ++hits; });
  EXPECT_EQ(hits, 0);

  const std::vector<rect> one{{0, 0, 10, 10}};
  const quadtree t(one);
  std::vector<std::uint32_t> got;
  t.query(rect{5, 5, 6, 6}, [&](std::uint32_t i) { got.push_back(i); });
  EXPECT_EQ(got, std::vector<std::uint32_t>{0});
}

TEST(Quadtree, SplitsUnderLoad) {
  const auto rs = random_rects(2000, 5);
  const quadtree t(rs, 8);
  EXPECT_GT(t.depth(), 2);
  EXPECT_EQ(t.size(), 2000u);
}

TEST(Quadtree, StraddlersStayQueryable) {
  // A rect exactly across the root split line can live at the root but must
  // still be reported.
  std::vector<rect> rs;
  for (int i = 0; i < 40; ++i) {
    rs.push_back({static_cast<coord_t>(i * 10), 0, static_cast<coord_t>(i * 10 + 5), 5});
  }
  rs.push_back({190, -100, 210, 100});  // straddles the vertical midline
  const quadtree t(rs, 4);
  std::set<std::uint32_t> got;
  t.query(rect{195, -50, 205, 50}, [&](std::uint32_t i) { got.insert(i); });
  EXPECT_TRUE(got.contains(40u));
}

class QuadtreeRandom : public ::testing::TestWithParam<int> {};

TEST_P(QuadtreeRandom, QueryMatchesBruteForce) {
  const auto rs = random_rects(500, static_cast<std::uint32_t>(GetParam()));
  const quadtree t(rs, 6);
  std::mt19937 rng(GetParam() * 13 + 5);
  std::uniform_int_distribution<coord_t> pos(0, 5000);
  for (int q = 0; q < 100; ++q) {
    const coord_t x = pos(rng), y = pos(rng);
    const rect window{x, y, static_cast<coord_t>(x + 350), static_cast<coord_t>(y + 250)};
    std::set<std::uint32_t> got, want;
    t.query(window, [&](std::uint32_t i) { got.insert(i); });
    for (std::uint32_t i = 0; i < rs.size(); ++i) {
      if (rs[i].overlaps(window)) want.insert(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST_P(QuadtreeRandom, PairsMatchSweepline) {
  const auto rs = random_rects(400, static_cast<std::uint32_t>(GetParam()) + 50);
  const quadtree t(rs);
  std::set<std::pair<std::uint32_t, std::uint32_t>> from_tree, from_sweep;
  t.overlap_pairs([&](std::uint32_t i, std::uint32_t j) { from_tree.insert({i, j}); });
  sweep::overlap_pairs(rs, [&](std::uint32_t i, std::uint32_t j) { from_sweep.insert({i, j}); });
  EXPECT_EQ(from_tree, from_sweep);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuadtreeRandom, ::testing::Range(1, 5));

TEST(QuadtreeEngine, CandidateStrategyProducesSameViolations) {
  auto spec = workload::spec_for("uart", 0.6);
  spec.inject = {2, 2, 1, 1};
  const auto g = workload::generate(spec);
  drc_engine sweep_eng({.candidates = engine::candidate_strategy::sweepline});
  drc_engine quad_eng({.candidates = engine::candidate_strategy::quadtree});
  using workload::layers;
  using workload::tech;
  auto a = sweep_eng.run_spacing(g.lib, layers::M1, tech::wire_space).violations;
  auto b = quad_eng.run_spacing(g.lib, layers::M1, tech::wire_space).violations;
  checks::normalize_all(a);
  checks::normalize_all(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace odrc::geo
