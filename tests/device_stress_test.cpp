// Device-simulator stress tests: randomized op sequences against a host
// oracle, many streams hammering one context, deep event chains, and large
// kernel grids — the concurrency soak for the substrate under the row
// pipeline and the concurrent deck checker.
#include "device/device.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace odrc::device {
namespace {

TEST(DeviceStress, RandomizedOpSequenceMatchesOracle) {
  // A device buffer of 64 ints mutated by a random sequence of kernels and
  // copies; a host-side oracle replays the same ops serially.
  context ctx(2, /*launch_latency_ns=*/0);
  stream s(ctx);
  constexpr std::uint32_t n = 64;
  buffer<int> dev(n, ctx);
  std::vector<int> oracle(n, 0);
  std::vector<int> init(n, 0);
  dev.upload(s, init);

  std::mt19937 rng(7);
  std::uniform_int_distribution<int> op_d(0, 2);
  std::uniform_int_distribution<int> val_d(1, 9);
  int* p = dev.device_ptr();
  for (int step = 0; step < 300; ++step) {
    const int op = op_d(rng);
    const int val = val_d(rng);
    switch (op) {
      case 0:  // add val to every element
        s.launch(1, n, [p, val](thread_id t) { p[t.global()] += val; });
        for (int& x : oracle) x += val;
        break;
      case 1:  // multiply element (step % n)
        s.launch(1, 1, [p, step, val](thread_id) { p[step % n] *= val; });
        oracle[static_cast<std::size_t>(step) % n] *= val;
        break;
      case 2: {  // rotate left by one, using a scratch copy inside a kernel
        s.launch(1, 1, [p](thread_id) {
          int first = p[0];
          for (std::uint32_t i = 0; i + 1 < n; ++i) p[i] = p[i + 1];
          p[n - 1] = first;
        });
        std::rotate(oracle.begin(), oracle.begin() + 1, oracle.end());
        break;
      }
    }
  }
  std::vector<int> got(n);
  dev.download(s, got);
  s.synchronize();
  EXPECT_EQ(got, oracle);
}

TEST(DeviceStress, ManyStreamsShareOneContext) {
  context ctx(3, 0);
  constexpr int kStreams = 6;
  constexpr int kKernels = 50;
  std::vector<std::unique_ptr<stream>> streams;
  std::vector<buffer<std::uint64_t>> sums;
  for (int i = 0; i < kStreams; ++i) {
    streams.push_back(std::make_unique<stream>(ctx));
    sums.emplace_back(1, ctx);
  }
  for (int i = 0; i < kStreams; ++i) {
    std::uint64_t* acc = sums[static_cast<std::size_t>(i)].device_ptr();
    streams[static_cast<std::size_t>(i)]->launch(1, 1, [acc](thread_id) { *acc = 0; });
    for (int k = 0; k < kKernels; ++k) {
      streams[static_cast<std::size_t>(i)]->launch(
          1, 1, [acc, k](thread_id) { *acc += static_cast<std::uint64_t>(k); });
    }
  }
  ctx.synchronize();
  for (int i = 0; i < kStreams; ++i) {
    std::uint64_t got = 0;
    streams[static_cast<std::size_t>(i)]->memcpy_d2h(
        &got, sums[static_cast<std::size_t>(i)].device_ptr(), sizeof(got));
    streams[static_cast<std::size_t>(i)]->synchronize();
    EXPECT_EQ(got, static_cast<std::uint64_t>(kKernels) * (kKernels - 1) / 2);
  }
}

TEST(DeviceStress, EventChainAcrossStreams) {
  // A value passed through a chain of streams, each incrementing after
  // waiting on the previous stream's event: total must equal chain length.
  context ctx(2, 0);
  constexpr int kChain = 8;
  buffer<int> dev(1, ctx);
  int* p = dev.device_ptr();

  std::vector<std::unique_ptr<stream>> streams;
  for (int i = 0; i < kChain; ++i) streams.push_back(std::make_unique<stream>(ctx));

  streams[0]->launch(1, 1, [p](thread_id) { *p = 0; });
  event prev;
  streams[0]->record(prev);
  for (int i = 1; i < kChain; ++i) {
    streams[static_cast<std::size_t>(i)]->wait(prev);
    streams[static_cast<std::size_t>(i)]->launch(1, 1, [p](thread_id) { *p += 1; });
    event next;
    streams[static_cast<std::size_t>(i)]->record(next);
    prev = next;
  }
  prev.wait();
  int got = 0;
  streams.back()->memcpy_d2h(&got, p, sizeof(got));
  streams.back()->synchronize();
  EXPECT_EQ(got, kChain - 1);
}

TEST(DeviceStress, LargeGridReduction) {
  context ctx(4, 0);
  stream s(ctx);
  constexpr std::uint32_t n = 1u << 18;
  buffer<std::uint32_t> in(n, ctx);
  std::uint32_t* ip = in.device_ptr();
  s.launch((n + 255) / 256, 256, [ip](thread_id t) {
    const std::uint32_t i = t.global();
    if (i < n) ip[i] = i % 7;
  });
  // Tree-free reduction with one atomic accumulator.
  auto* acc = static_cast<std::atomic<std::uint64_t>*>(ctx.malloc(sizeof(std::atomic<std::uint64_t>)));
  new (acc) std::atomic<std::uint64_t>{0};
  s.launch((n + 255) / 256, 256, [ip, acc](thread_id t) {
    const std::uint32_t i = t.global();
    if (i < n) acc->fetch_add(ip[i], std::memory_order_relaxed);
  });
  s.synchronize();
  std::uint64_t expected = 0;
  for (std::uint32_t i = 0; i < n; ++i) expected += i % 7;
  EXPECT_EQ(acc->load(), expected);
  acc->~atomic();
  ctx.free(acc);
}

}  // namespace
}  // namespace odrc::device
