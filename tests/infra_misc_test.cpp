// Tests for the remaining infrastructure pieces: small_vector, morton codes,
// thread pool, timer/profiler, logger, execution traits.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>

#include "infra/execution.hpp"
#include "infra/logger.hpp"
#include "infra/morton.hpp"
#include "infra/small_vector.hpp"
#include "infra/thread_pool.hpp"
#include "infra/timer.hpp"

namespace odrc {
namespace {

// ---------------------------------------------------------------------------
// small_vector
// ---------------------------------------------------------------------------

TEST(SmallVector, StaysInlineUpToCapacity) {
  small_vector<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, CopyAndMove) {
  small_vector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  small_vector<int, 2> copy = v;
  EXPECT_EQ(copy.size(), 10u);
  EXPECT_EQ(copy[9], 9);
  small_vector<int, 2> moved = std::move(v);
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move) - documented state
  copy = moved;
  EXPECT_EQ(copy[5], 5);
}

TEST(SmallVector, PopAndClear) {
  small_vector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.back(), 2);
  v.pop_back();
  EXPECT_EQ(v.back(), 1);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, ReserveGrows) {
  small_vector<int, 2> v;
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------------------------------
// Morton codes
// ---------------------------------------------------------------------------

TEST(Morton, SpreadInterleaves) {
  EXPECT_EQ(morton_spread(0b1), 0b1u);
  EXPECT_EQ(morton_spread(0b11), 0b101u);
  EXPECT_EQ(morton_spread(0b111), 0b10101u);
}

TEST(Morton, EncodeOrdersQuadrants) {
  // Z-order: within a 2x2 block, (0,0) < (1,0) < (0,1) < (1,1).
  EXPECT_LT(morton_encode(0, 0), morton_encode(1, 0));
  EXPECT_LT(morton_encode(1, 0), morton_encode(0, 1));
  EXPECT_LT(morton_encode(0, 1), morton_encode(1, 1));
}

TEST(Morton, NegativeCoordinatesOrderCorrectly) {
  EXPECT_LT(morton_code(point{-100, -100}), morton_code(point{100, 100}));
  EXPECT_EQ(morton_code(rect{}), 0u);
  EXPECT_NE(morton_code(rect{0, 0, 10, 10}), 0u);
}

// ---------------------------------------------------------------------------
// thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsResults) {
  thread_pool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string{"ok"}; });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  thread_pool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyAndTinyRanges) {
  thread_pool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> n{0};
  pool.parallel_for(0, 1, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPool, SingleWorkerDoesNotDeadlock) {
  thread_pool pool(1);
  std::atomic<int> n{0};
  pool.parallel_for(0, 100, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 100);
}

TEST(ThreadPool, GlobalIsSingleton) {
  EXPECT_EQ(&thread_pool::global(), &thread_pool::global());
  EXPECT_GE(thread_pool::global().worker_count(), 1u);
}

// ---------------------------------------------------------------------------
// timer / profiler
// ---------------------------------------------------------------------------

TEST(Timer, MeasuresForwardTime) {
  timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.nanoseconds(), 0u);
}

TEST(PhaseProfiler, AccumulatesAndFractions) {
  phase_profiler prof;
  prof.add("partition", 0.15);
  prof.add("sweepline", 0.35);
  prof.add("edge_check", 0.50);
  prof.add("partition", 0.15);
  EXPECT_DOUBLE_EQ(prof.total(), 1.15);
  EXPECT_NEAR(prof.fraction("partition"), 0.30 / 1.15, 1e-12);
  EXPECT_DOUBLE_EQ(prof.fraction("missing"), 0.0);
  prof.clear();
  EXPECT_DOUBLE_EQ(prof.total(), 0.0);
}

TEST(PhaseProfiler, ScopeRecords) {
  phase_profiler prof;
  {
    auto s = prof.measure("work");
  }
  EXPECT_EQ(prof.phases().size(), 1u);
  EXPECT_GE(prof.phases().at("work"), 0.0);
}

// ---------------------------------------------------------------------------
// logger
// ---------------------------------------------------------------------------

TEST(Logger, LevelsGate) {
  logger& lg = logger::instance();
  const log_level before = lg.level();
  lg.set_level(log_level::error);
  EXPECT_FALSE(lg.enabled(log_level::debug));
  EXPECT_TRUE(lg.enabled(log_level::error));
  log_debug() << "should not appear";
  log_error() << "logger test line (expected in output)";
  lg.set_level(before);
}

// ---------------------------------------------------------------------------
// execution traits (paper Listing 2's compile-time dispatch)
// ---------------------------------------------------------------------------

TEST(Execution, TraitsClassifyExecutors) {
  static_assert(execution::is_sequenced_executor_v<execution::sequenced_policy>);
  static_assert(!execution::is_device_executor_v<execution::sequenced_policy>);
  static_assert(execution::is_device_executor_v<execution::device_policy>);
  static_assert(!execution::is_sequenced_executor_v<execution::device_policy>);
  static_assert(execution::is_sequenced_executor_v<const execution::sequenced_policy&>);
  static_assert(execution::executor<execution::sequenced_policy>);
  static_assert(execution::executor<execution::device_policy>);
  static_assert(!execution::executor<int>);
  SUCCEED();
}

}  // namespace
}  // namespace odrc
