# Bench-harness smoke test: run one converted bench end-to-end in --quick
# mode, then prove the regression gate both passes on identical reports and
# fires on an injected 2x slowdown (--scale-current self-test).
# Invoked as: cmake -DBENCH_BIN=<micro_partition> -DCOMPARE_BIN=<bench_compare>
#                   -DWORK_DIR=<dir> -P bench_smoke_test.cmake
file(MAKE_DIRECTORY ${WORK_DIR})
set(json ${WORK_DIR}/BENCH_smoke.json)

execute_process(
  COMMAND ${BENCH_BIN} --quick --reps=2 --warmup=0 --no-trace-rep --json=${json}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc STREQUAL "0")
  message(FATAL_ERROR "bench --quick failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS ${json})
  message(FATAL_ERROR "bench wrote no JSON report")
endif()
file(READ ${json} json_text)
if(NOT json_text MATCHES "\"schema\":\"odrc-bench\"" OR NOT json_text MATCHES "\"schema_version\":1")
  message(FATAL_ERROR "bench JSON misses schema markers:\n${json_text}")
endif()

# Identical reports: the gate must pass.
execute_process(COMMAND ${COMPARE_BIN} ${json} ${json}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc STREQUAL "0")
  message(FATAL_ERROR "self-compare must exit 0, got ${rc}:\n${out}\n${err}")
endif()

# Injected 2x regression: the gate must fire (exit 1, not a usage error).
execute_process(COMMAND ${COMPARE_BIN} --scale-current=2 ${json} ${json}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc STREQUAL "1")
  message(FATAL_ERROR "injected regression must exit 1, got ${rc}:\n${out}\n${err}")
endif()

# ... unless --warn-only (the pull_request mode) downgrades it.
execute_process(COMMAND ${COMPARE_BIN} --warn-only --scale-current=2 ${json} ${json}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc STREQUAL "0")
  message(FATAL_ERROR "--warn-only must exit 0, got ${rc}:\n${out}\n${err}")
endif()

message(STATUS "bench smoke OK")
