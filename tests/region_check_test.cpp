// Region-of-interest (incremental) checking tests: check_region must equal
// the window-filtered full check while examining far fewer objects.
#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "workload/workload.hpp"

namespace odrc::engine {
namespace {

using workload::layers;
using workload::tech;

std::vector<checks::violation> norm(std::vector<checks::violation> v) {
  checks::normalize_all(v);
  return v;
}

// Window-filter a full-check result with the documented semantics: keep
// violations with an offending edge intersecting the window.
std::vector<checks::violation> filtered(std::vector<checks::violation> vs, const rect& w) {
  std::erase_if(vs, [&](const checks::violation& v) {
    return !w.overlaps(v.e1.mbr()) && !w.overlaps(v.e2.mbr());
  });
  return vs;
}

class RegionCheck : public ::testing::Test {
 protected:
  RegionCheck() {
    auto spec = workload::spec_for("ibex", 0.6);
    spec.inject = {2, 2, 2, 2};
    gen_ = workload::generate(spec);
  }
  workload::generated gen_;
};

TEST_F(RegionCheck, SpacingMatchesFilteredFullCheck) {
  drc_engine e;
  const rules::rule r = rules::layer(layers::M1).spacing().greater_than(tech::wire_space);
  const auto full = e.check(gen_.lib, r).violations;
  ASSERT_FALSE(full.empty());

  // Several windows including the injection strip and empty areas.
  const rect die{0, -500, 100000, 100000};
  for (const rect w : {rect{0, -450, 2000, -250},    // injection strip
                       rect{0, 0, 3000, 3000},       // placement corner
                       rect{-10000, -10000, -5000, -5000},  // empty
                       die}) {
    EXPECT_EQ(norm(e.check_region(gen_.lib, r, w).violations), norm(filtered(full, w)))
        << w;
  }
}

TEST_F(RegionCheck, ExaminesFewerObjects) {
  drc_engine e;
  const rules::rule r = rules::layer(layers::M1).spacing().greater_than(tech::wire_space);
  const auto full = e.check(gen_.lib, r);
  const auto region =
      e.check_region(gen_.lib, r, rect{0, 0, 1000, 1000});
  EXPECT_LT(region.instances, full.instances / 4);
  EXPECT_LT(region.check_stats.edge_pairs_tested + 1, full.check_stats.edge_pairs_tested + 1);
}

TEST_F(RegionCheck, WorksForAllRuleKinds) {
  drc_engine e;
  const rect strip{0, -450, 10000, -250};  // covers every injection site
  const std::vector<rules::rule> deck{
      rules::layer(layers::M1).width().greater_than(tech::wire_width),
      rules::layer(layers::M1).area().greater_than(tech::min_area),
      rules::layer(layers::M2).spacing().greater_than(tech::wire_space),
      rules::layer(layers::V1).enclosed_by(layers::M1).greater_than(tech::via_enclosure),
  };
  for (const rules::rule& r : deck) {
    const auto full = e.check(gen_.lib, r).violations;
    EXPECT_EQ(norm(e.check_region(gen_.lib, r, strip).violations), norm(filtered(full, strip)));
  }
}

TEST_F(RegionCheck, EmptyWindowFindsNothing) {
  drc_engine e;
  const rules::rule r = rules::layer(layers::M1).spacing().greater_than(tech::wire_space);
  EXPECT_TRUE(
      e.check_region(gen_.lib, r, rect{900000, 900000, 900100, 900100}).violations.empty());
}

TEST_F(RegionCheck, EngineStateResetsAfterRegionCheck) {
  drc_engine e;
  const rules::rule r = rules::layer(layers::M1).spacing().greater_than(tech::wire_space);
  const auto before = e.check(gen_.lib, r).violations;
  (void)e.check_region(gen_.lib, r, rect{0, 0, 100, 100});
  const auto after = e.check(gen_.lib, r).violations;
  EXPECT_EQ(norm(before), norm(after));  // the region must not leak
}

TEST_F(RegionCheck, ParallelModeAgrees) {
  drc_engine seq({.run_mode = mode::sequential});
  drc_engine par({.run_mode = mode::parallel});
  const rules::rule r = rules::layer(layers::M2).spacing().greater_than(tech::wire_space);
  const rect w{0, -450, 5000, 2000};
  EXPECT_EQ(norm(seq.check_region(gen_.lib, r, w).violations),
            norm(par.check_region(gen_.lib, r, w).violations));
}

}  // namespace
}  // namespace odrc::engine
