// Boolean mask operation tests: hand cases plus an exhaustive grid-raster
// oracle over random rectangle/polygon soups.
#include "geo/boolean.hpp"

#include <gtest/gtest.h>

#include <random>

#include "infra/disjoint_set.hpp"

namespace odrc::geo {
namespace {

std::vector<polygon> polys(std::initializer_list<rect> rs) {
  std::vector<polygon> out;
  for (const rect& r : rs) out.push_back(polygon::from_rect(r));
  return out;
}

area_t total_area(const std::vector<rect>& rs) {
  area_t a = 0;
  for (const rect& r : rs) a += r.area();
  return a;
}

// The slabs must be pairwise interior-disjoint.
void expect_disjoint(const std::vector<rect>& rs) {
  for (std::size_t i = 0; i < rs.size(); ++i) {
    for (std::size_t j = i + 1; j < rs.size(); ++j) {
      EXPECT_FALSE(rs[i].overlaps_strictly(rs[j])) << rs[i] << " vs " << rs[j];
    }
  }
}

TEST(Boolean, EmptyInputs) {
  EXPECT_TRUE(boolean_rects(std::span<const polygon>{}, {}, bool_op::unite).empty());
  const auto a = polys({{0, 0, 10, 10}});
  EXPECT_TRUE(boolean_rects({}, a, bool_op::subtract).empty());
  EXPECT_TRUE(boolean_rects(a, {}, bool_op::intersect).empty());
  EXPECT_EQ(boolean_area(a, {}, bool_op::unite), 100);
}

TEST(Boolean, DisjointUnion) {
  const auto a = polys({{0, 0, 10, 10}});
  const auto b = polys({{20, 0, 30, 10}});
  const auto u = boolean_rects(a, b, bool_op::unite);
  EXPECT_EQ(total_area(u), 200);
  expect_disjoint(u);
}

TEST(Boolean, OverlapCases) {
  const auto a = polys({{0, 0, 10, 10}});
  const auto b = polys({{5, 5, 15, 15}});
  EXPECT_EQ(boolean_area(a, b, bool_op::unite), 175);
  EXPECT_EQ(boolean_area(a, b, bool_op::intersect), 25);
  EXPECT_EQ(boolean_area(a, b, bool_op::subtract), 75);
  EXPECT_EQ(boolean_area(a, b, bool_op::exclusive_or), 150);
}

TEST(Boolean, AbuttingShapesMergeInUnion) {
  const auto a = polys({{0, 0, 10, 10}, {10, 0, 20, 10}});
  const auto u = boolean_rects(a, {}, bool_op::unite);
  EXPECT_EQ(total_area(u), 200);
  // Coalesced horizontally into one slab.
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], (rect{0, 0, 20, 10}));
}

TEST(Boolean, SelfOverlapCountsOnce) {
  const auto a = polys({{0, 0, 10, 10}, {0, 0, 10, 10}, {5, 0, 15, 10}});
  EXPECT_EQ(boolean_area(a, {}, bool_op::unite), 150);
}

TEST(Boolean, SubtractPunchesHole) {
  // A ring: 30x30 minus 10x10 centered — area 800, and the XOR equals the
  // subtract when B is inside A.
  const auto a = polys({{0, 0, 30, 30}});
  const auto b = polys({{10, 10, 20, 20}});
  EXPECT_EQ(boolean_area(a, b, bool_op::subtract), 800);
  EXPECT_EQ(boolean_area(a, b, bool_op::exclusive_or), 800);
  expect_disjoint(boolean_rects(a, b, bool_op::subtract));
}

TEST(Boolean, LShapePolygonInput) {
  // Non-rectangle rectilinear input: L-shape area 18*100 + 42*18.
  std::vector<polygon> a{
      polygon{{{0, 0}, {0, 100}, {18, 100}, {18, 18}, {60, 18}, {60, 0}}}};
  EXPECT_EQ(boolean_area(a, {}, bool_op::unite), 18 * 100 + 42 * 18);
  const auto clipped = boolean_area(a, polys({{0, 0, 200, 18}}), bool_op::intersect);
  EXPECT_EQ(clipped, 60 * 18);
}

TEST(Boolean, MergedRectsConvenience) {
  const auto m = merged_rects(polys({{0, 0, 10, 10}, {5, 5, 15, 15}}));
  EXPECT_EQ(total_area(m), 175);
  expect_disjoint(m);
}

// ---------------------------------------------------------------------------
// Grid-raster oracle
// ---------------------------------------------------------------------------

class BooleanOracle : public ::testing::TestWithParam<std::tuple<int, bool_op>> {};

TEST_P(BooleanOracle, MatchesRasterization) {
  const int seed = std::get<0>(GetParam());
  const bool_op op = std::get<1>(GetParam());
  std::mt19937 rng(seed);
  std::uniform_int_distribution<coord_t> pos(0, 48);
  std::uniform_int_distribution<coord_t> len(1, 14);

  constexpr int G = 64;
  std::vector<rect> ra, rb;
  for (int i = 0; i < 12; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    ra.push_back({x, y, std::min<coord_t>(G, x + len(rng)), std::min<coord_t>(G, y + len(rng))});
  }
  for (int i = 0; i < 12; ++i) {
    const coord_t x = pos(rng), y = pos(rng);
    rb.push_back({x, y, std::min<coord_t>(G, x + len(rng)), std::min<coord_t>(G, y + len(rng))});
  }

  // Oracle: rasterize onto unit cells. Cell (x, y) covers [x, x+1] x [y, y+1].
  auto rasterize = [&](const std::vector<rect>& rs) {
    std::vector<std::vector<bool>> grid(G, std::vector<bool>(G, false));
    for (const rect& r : rs) {
      for (coord_t x = r.x_min; x < r.x_max; ++x) {
        for (coord_t y = r.y_min; y < r.y_max; ++y) {
          grid[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] = true;
        }
      }
    }
    return grid;
  };
  const auto ga = rasterize(ra);
  const auto gb = rasterize(rb);

  const auto result = boolean_rects(std::span<const rect>(ra), rb, op);
  expect_disjoint(result);
  const auto gr = rasterize(result);

  for (int x = 0; x < G; ++x) {
    for (int y = 0; y < G; ++y) {
      const bool a = ga[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)];
      const bool b = gb[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)];
      bool want = false;
      switch (op) {
        case bool_op::unite: want = a || b; break;
        case bool_op::intersect: want = a && b; break;
        case bool_op::subtract: want = a && !b; break;
        case bool_op::exclusive_or: want = a != b; break;
      }
      EXPECT_EQ(gr[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)], want)
          << "cell " << x << "," << y << " op " << static_cast<int>(op);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BooleanOracle,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Values(bool_op::unite, bool_op::intersect,
                                                              bool_op::subtract,
                                                              bool_op::exclusive_or)));

// ---------------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------------

TEST(Components, GroupsTouchingRects) {
  const std::vector<rect> rs{
      {0, 0, 10, 10}, {10, 0, 20, 10},   // touching pair -> one component
      {50, 50, 60, 60},                  // isolated
  };
  const auto comps = connected_components(rs);
  ASSERT_EQ(comps.size(), 2u);
  const auto& big = comps[0].members.size() == 2 ? comps[0] : comps[1];
  const auto& small = comps[0].members.size() == 2 ? comps[1] : comps[0];
  EXPECT_EQ(big.area, 200);
  EXPECT_EQ(big.mbr, (rect{0, 0, 20, 10}));
  EXPECT_EQ(small.area, 100);
}

TEST(Components, EmptyInput) {
  EXPECT_TRUE(connected_components({}).empty());
}

TEST(Components, ChainTransitivity) {
  std::vector<rect> rs;
  for (int i = 0; i < 20; ++i) {
    rs.push_back({static_cast<coord_t>(i * 10), 0, static_cast<coord_t>(i * 10 + 10), 5});
  }
  const auto comps = connected_components(rs);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].members.size(), 20u);
  EXPECT_EQ(comps[0].area, 20 * 50);
}

TEST(DisjointSet, Basics) {
  disjoint_set ds(5);
  EXPECT_FALSE(ds.same(0, 1));
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_FALSE(ds.unite(0, 1));
  EXPECT_TRUE(ds.unite(1, 2));
  EXPECT_TRUE(ds.same(0, 2));
  EXPECT_EQ(ds.set_size(2), 3u);
  EXPECT_EQ(ds.set_size(4), 1u);
  EXPECT_EQ(ds.element_count(), 5u);
}

}  // namespace
}  // namespace odrc::geo
