file(REMOVE_RECURSE
  "../examples/custom_rules"
  "../examples/custom_rules.pdb"
  "CMakeFiles/custom_rules.dir/custom_rules.cpp.o"
  "CMakeFiles/custom_rules.dir/custom_rules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
