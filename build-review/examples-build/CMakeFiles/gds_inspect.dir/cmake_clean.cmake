file(REMOVE_RECURSE
  "../examples/gds_inspect"
  "../examples/gds_inspect.pdb"
  "CMakeFiles/gds_inspect.dir/gds_inspect.cpp.o"
  "CMakeFiles/gds_inspect.dir/gds_inspect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gds_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
