# Empty compiler generated dependencies file for gds_inspect.
# This may be replaced when dependencies are built.
