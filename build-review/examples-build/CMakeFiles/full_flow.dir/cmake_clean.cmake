file(REMOVE_RECURSE
  "../examples/full_flow"
  "../examples/full_flow.pdb"
  "CMakeFiles/full_flow.dir/full_flow.cpp.o"
  "CMakeFiles/full_flow.dir/full_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
