file(REMOVE_RECURSE
  "../examples/advanced_rules"
  "../examples/advanced_rules.pdb"
  "CMakeFiles/advanced_rules.dir/advanced_rules.cpp.o"
  "CMakeFiles/advanced_rules.dir/advanced_rules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
