
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/advanced_rules.cpp" "examples-build/CMakeFiles/advanced_rules.dir/advanced_rules.cpp.o" "gcc" "examples-build/CMakeFiles/advanced_rules.dir/advanced_rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/baseline/CMakeFiles/odrc_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/engine/CMakeFiles/odrc_engine.dir/DependInfo.cmake"
  "/root/repo/build-review/src/render/CMakeFiles/odrc_render.dir/DependInfo.cmake"
  "/root/repo/build-review/src/report/CMakeFiles/odrc_report.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/odrc_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gdsii/CMakeFiles/odrc_gdsii.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sweep/CMakeFiles/odrc_sweep.dir/DependInfo.cmake"
  "/root/repo/build-review/src/checks/CMakeFiles/odrc_checks.dir/DependInfo.cmake"
  "/root/repo/build-review/src/partition/CMakeFiles/odrc_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/db/CMakeFiles/odrc_db.dir/DependInfo.cmake"
  "/root/repo/build-review/src/device/CMakeFiles/odrc_device.dir/DependInfo.cmake"
  "/root/repo/build-review/src/infra/CMakeFiles/odrc_infra.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/odrc_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
