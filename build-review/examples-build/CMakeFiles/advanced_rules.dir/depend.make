# Empty dependencies file for advanced_rules.
# This may be replaced when dependencies are built.
