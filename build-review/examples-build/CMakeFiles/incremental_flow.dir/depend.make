# Empty dependencies file for incremental_flow.
# This may be replaced when dependencies are built.
