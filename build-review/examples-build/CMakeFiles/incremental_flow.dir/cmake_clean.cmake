file(REMOVE_RECURSE
  "../examples/incremental_flow"
  "../examples/incremental_flow.pdb"
  "CMakeFiles/incremental_flow.dir/incremental_flow.cpp.o"
  "CMakeFiles/incremental_flow.dir/incremental_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
