# Empty compiler generated dependencies file for odrc.
# This may be replaced when dependencies are built.
