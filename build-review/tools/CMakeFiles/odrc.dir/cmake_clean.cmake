file(REMOVE_RECURSE
  "CMakeFiles/odrc.dir/odrc_cli.cpp.o"
  "CMakeFiles/odrc.dir/odrc_cli.cpp.o.d"
  "odrc"
  "odrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
