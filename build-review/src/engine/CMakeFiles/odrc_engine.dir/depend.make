# Empty dependencies file for odrc_engine.
# This may be replaced when dependencies are built.
