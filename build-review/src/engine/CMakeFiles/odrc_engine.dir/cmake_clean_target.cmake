file(REMOVE_RECURSE
  "libodrc_engine.a"
)
