file(REMOVE_RECURSE
  "CMakeFiles/odrc_engine.dir/deck_parser.cpp.o"
  "CMakeFiles/odrc_engine.dir/deck_parser.cpp.o.d"
  "CMakeFiles/odrc_engine.dir/engine.cpp.o"
  "CMakeFiles/odrc_engine.dir/engine.cpp.o.d"
  "CMakeFiles/odrc_engine.dir/pipeline.cpp.o"
  "CMakeFiles/odrc_engine.dir/pipeline.cpp.o.d"
  "CMakeFiles/odrc_engine.dir/plan.cpp.o"
  "CMakeFiles/odrc_engine.dir/plan.cpp.o.d"
  "libodrc_engine.a"
  "libodrc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
