file(REMOVE_RECURSE
  "CMakeFiles/odrc_workload.dir/workload.cpp.o"
  "CMakeFiles/odrc_workload.dir/workload.cpp.o.d"
  "libodrc_workload.a"
  "libodrc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
