# Empty compiler generated dependencies file for odrc_workload.
# This may be replaced when dependencies are built.
