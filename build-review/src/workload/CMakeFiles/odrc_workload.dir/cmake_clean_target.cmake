file(REMOVE_RECURSE
  "libodrc_workload.a"
)
