# Empty dependencies file for odrc_sweep.
# This may be replaced when dependencies are built.
