file(REMOVE_RECURSE
  "libodrc_sweep.a"
)
