file(REMOVE_RECURSE
  "CMakeFiles/odrc_sweep.dir/device_sweep.cpp.o"
  "CMakeFiles/odrc_sweep.dir/device_sweep.cpp.o.d"
  "CMakeFiles/odrc_sweep.dir/sweepline.cpp.o"
  "CMakeFiles/odrc_sweep.dir/sweepline.cpp.o.d"
  "libodrc_sweep.a"
  "libodrc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
