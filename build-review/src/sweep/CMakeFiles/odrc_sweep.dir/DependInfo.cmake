
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sweep/device_sweep.cpp" "src/sweep/CMakeFiles/odrc_sweep.dir/device_sweep.cpp.o" "gcc" "src/sweep/CMakeFiles/odrc_sweep.dir/device_sweep.cpp.o.d"
  "/root/repo/src/sweep/sweepline.cpp" "src/sweep/CMakeFiles/odrc_sweep.dir/sweepline.cpp.o" "gcc" "src/sweep/CMakeFiles/odrc_sweep.dir/sweepline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/infra/CMakeFiles/odrc_infra.dir/DependInfo.cmake"
  "/root/repo/build-review/src/device/CMakeFiles/odrc_device.dir/DependInfo.cmake"
  "/root/repo/build-review/src/checks/CMakeFiles/odrc_checks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
