
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/boolean.cpp" "src/geo/CMakeFiles/odrc_geo.dir/boolean.cpp.o" "gcc" "src/geo/CMakeFiles/odrc_geo.dir/boolean.cpp.o.d"
  "/root/repo/src/geo/kdtree.cpp" "src/geo/CMakeFiles/odrc_geo.dir/kdtree.cpp.o" "gcc" "src/geo/CMakeFiles/odrc_geo.dir/kdtree.cpp.o.d"
  "/root/repo/src/geo/quadtree.cpp" "src/geo/CMakeFiles/odrc_geo.dir/quadtree.cpp.o" "gcc" "src/geo/CMakeFiles/odrc_geo.dir/quadtree.cpp.o.d"
  "/root/repo/src/geo/rtree.cpp" "src/geo/CMakeFiles/odrc_geo.dir/rtree.cpp.o" "gcc" "src/geo/CMakeFiles/odrc_geo.dir/rtree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/infra/CMakeFiles/odrc_infra.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sweep/CMakeFiles/odrc_sweep.dir/DependInfo.cmake"
  "/root/repo/build-review/src/device/CMakeFiles/odrc_device.dir/DependInfo.cmake"
  "/root/repo/build-review/src/checks/CMakeFiles/odrc_checks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
