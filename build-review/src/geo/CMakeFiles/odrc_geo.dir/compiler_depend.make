# Empty compiler generated dependencies file for odrc_geo.
# This may be replaced when dependencies are built.
