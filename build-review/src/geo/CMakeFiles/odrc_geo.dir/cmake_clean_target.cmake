file(REMOVE_RECURSE
  "libodrc_geo.a"
)
