file(REMOVE_RECURSE
  "CMakeFiles/odrc_geo.dir/boolean.cpp.o"
  "CMakeFiles/odrc_geo.dir/boolean.cpp.o.d"
  "CMakeFiles/odrc_geo.dir/kdtree.cpp.o"
  "CMakeFiles/odrc_geo.dir/kdtree.cpp.o.d"
  "CMakeFiles/odrc_geo.dir/quadtree.cpp.o"
  "CMakeFiles/odrc_geo.dir/quadtree.cpp.o.d"
  "CMakeFiles/odrc_geo.dir/rtree.cpp.o"
  "CMakeFiles/odrc_geo.dir/rtree.cpp.o.d"
  "libodrc_geo.a"
  "libodrc_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
