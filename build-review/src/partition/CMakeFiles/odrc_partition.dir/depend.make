# Empty dependencies file for odrc_partition.
# This may be replaced when dependencies are built.
