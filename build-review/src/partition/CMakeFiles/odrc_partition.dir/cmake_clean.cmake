file(REMOVE_RECURSE
  "CMakeFiles/odrc_partition.dir/row_partition.cpp.o"
  "CMakeFiles/odrc_partition.dir/row_partition.cpp.o.d"
  "libodrc_partition.a"
  "libodrc_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
