file(REMOVE_RECURSE
  "libodrc_partition.a"
)
