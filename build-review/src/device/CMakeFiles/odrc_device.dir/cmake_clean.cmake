file(REMOVE_RECURSE
  "CMakeFiles/odrc_device.dir/device.cpp.o"
  "CMakeFiles/odrc_device.dir/device.cpp.o.d"
  "libodrc_device.a"
  "libodrc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
