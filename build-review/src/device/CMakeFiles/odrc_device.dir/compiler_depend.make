# Empty compiler generated dependencies file for odrc_device.
# This may be replaced when dependencies are built.
