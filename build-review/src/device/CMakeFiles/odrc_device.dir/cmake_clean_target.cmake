file(REMOVE_RECURSE
  "libodrc_device.a"
)
