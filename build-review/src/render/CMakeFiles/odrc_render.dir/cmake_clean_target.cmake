file(REMOVE_RECURSE
  "libodrc_render.a"
)
