# Empty dependencies file for odrc_render.
# This may be replaced when dependencies are built.
