file(REMOVE_RECURSE
  "CMakeFiles/odrc_render.dir/render.cpp.o"
  "CMakeFiles/odrc_render.dir/render.cpp.o.d"
  "libodrc_render.a"
  "libodrc_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
