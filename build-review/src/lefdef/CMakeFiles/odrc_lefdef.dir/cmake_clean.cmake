file(REMOVE_RECURSE
  "CMakeFiles/odrc_lefdef.dir/lefdef.cpp.o"
  "CMakeFiles/odrc_lefdef.dir/lefdef.cpp.o.d"
  "libodrc_lefdef.a"
  "libodrc_lefdef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_lefdef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
