# Empty compiler generated dependencies file for odrc_lefdef.
# This may be replaced when dependencies are built.
