file(REMOVE_RECURSE
  "libodrc_lefdef.a"
)
