file(REMOVE_RECURSE
  "libodrc_report.a"
)
