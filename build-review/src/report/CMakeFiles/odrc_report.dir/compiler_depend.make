# Empty compiler generated dependencies file for odrc_report.
# This may be replaced when dependencies are built.
