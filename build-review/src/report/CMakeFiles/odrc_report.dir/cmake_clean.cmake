file(REMOVE_RECURSE
  "CMakeFiles/odrc_report.dir/violation_db.cpp.o"
  "CMakeFiles/odrc_report.dir/violation_db.cpp.o.d"
  "libodrc_report.a"
  "libodrc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
