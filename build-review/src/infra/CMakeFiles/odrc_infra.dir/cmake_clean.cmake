file(REMOVE_RECURSE
  "CMakeFiles/odrc_infra.dir/geometry.cpp.o"
  "CMakeFiles/odrc_infra.dir/geometry.cpp.o.d"
  "CMakeFiles/odrc_infra.dir/interval_tree.cpp.o"
  "CMakeFiles/odrc_infra.dir/interval_tree.cpp.o.d"
  "CMakeFiles/odrc_infra.dir/logger.cpp.o"
  "CMakeFiles/odrc_infra.dir/logger.cpp.o.d"
  "CMakeFiles/odrc_infra.dir/pigeonhole.cpp.o"
  "CMakeFiles/odrc_infra.dir/pigeonhole.cpp.o.d"
  "CMakeFiles/odrc_infra.dir/thread_pool.cpp.o"
  "CMakeFiles/odrc_infra.dir/thread_pool.cpp.o.d"
  "CMakeFiles/odrc_infra.dir/trace.cpp.o"
  "CMakeFiles/odrc_infra.dir/trace.cpp.o.d"
  "libodrc_infra.a"
  "libodrc_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
