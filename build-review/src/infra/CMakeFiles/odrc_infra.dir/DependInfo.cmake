
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infra/geometry.cpp" "src/infra/CMakeFiles/odrc_infra.dir/geometry.cpp.o" "gcc" "src/infra/CMakeFiles/odrc_infra.dir/geometry.cpp.o.d"
  "/root/repo/src/infra/interval_tree.cpp" "src/infra/CMakeFiles/odrc_infra.dir/interval_tree.cpp.o" "gcc" "src/infra/CMakeFiles/odrc_infra.dir/interval_tree.cpp.o.d"
  "/root/repo/src/infra/logger.cpp" "src/infra/CMakeFiles/odrc_infra.dir/logger.cpp.o" "gcc" "src/infra/CMakeFiles/odrc_infra.dir/logger.cpp.o.d"
  "/root/repo/src/infra/pigeonhole.cpp" "src/infra/CMakeFiles/odrc_infra.dir/pigeonhole.cpp.o" "gcc" "src/infra/CMakeFiles/odrc_infra.dir/pigeonhole.cpp.o.d"
  "/root/repo/src/infra/thread_pool.cpp" "src/infra/CMakeFiles/odrc_infra.dir/thread_pool.cpp.o" "gcc" "src/infra/CMakeFiles/odrc_infra.dir/thread_pool.cpp.o.d"
  "/root/repo/src/infra/trace.cpp" "src/infra/CMakeFiles/odrc_infra.dir/trace.cpp.o" "gcc" "src/infra/CMakeFiles/odrc_infra.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
