file(REMOVE_RECURSE
  "libodrc_infra.a"
)
