# Empty compiler generated dependencies file for odrc_infra.
# This may be replaced when dependencies are built.
