file(REMOVE_RECURSE
  "CMakeFiles/odrc_db.dir/flatten.cpp.o"
  "CMakeFiles/odrc_db.dir/flatten.cpp.o.d"
  "CMakeFiles/odrc_db.dir/layout.cpp.o"
  "CMakeFiles/odrc_db.dir/layout.cpp.o.d"
  "CMakeFiles/odrc_db.dir/mbr_index.cpp.o"
  "CMakeFiles/odrc_db.dir/mbr_index.cpp.o.d"
  "libodrc_db.a"
  "libodrc_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
