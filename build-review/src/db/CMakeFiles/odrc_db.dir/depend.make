# Empty dependencies file for odrc_db.
# This may be replaced when dependencies are built.
