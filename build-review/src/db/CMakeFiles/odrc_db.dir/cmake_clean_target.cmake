file(REMOVE_RECURSE
  "libodrc_db.a"
)
