
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gdsii/reader.cpp" "src/gdsii/CMakeFiles/odrc_gdsii.dir/reader.cpp.o" "gcc" "src/gdsii/CMakeFiles/odrc_gdsii.dir/reader.cpp.o.d"
  "/root/repo/src/gdsii/writer.cpp" "src/gdsii/CMakeFiles/odrc_gdsii.dir/writer.cpp.o" "gcc" "src/gdsii/CMakeFiles/odrc_gdsii.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/db/CMakeFiles/odrc_db.dir/DependInfo.cmake"
  "/root/repo/build-review/src/infra/CMakeFiles/odrc_infra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
