# Empty compiler generated dependencies file for odrc_gdsii.
# This may be replaced when dependencies are built.
