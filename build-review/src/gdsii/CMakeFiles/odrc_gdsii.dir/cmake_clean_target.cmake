file(REMOVE_RECURSE
  "libodrc_gdsii.a"
)
