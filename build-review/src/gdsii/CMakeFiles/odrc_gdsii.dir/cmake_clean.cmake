file(REMOVE_RECURSE
  "CMakeFiles/odrc_gdsii.dir/reader.cpp.o"
  "CMakeFiles/odrc_gdsii.dir/reader.cpp.o.d"
  "CMakeFiles/odrc_gdsii.dir/writer.cpp.o"
  "CMakeFiles/odrc_gdsii.dir/writer.cpp.o.d"
  "libodrc_gdsii.a"
  "libodrc_gdsii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_gdsii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
