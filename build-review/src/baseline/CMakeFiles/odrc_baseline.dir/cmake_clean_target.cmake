file(REMOVE_RECURSE
  "libodrc_baseline.a"
)
