# Empty compiler generated dependencies file for odrc_baseline.
# This may be replaced when dependencies are built.
