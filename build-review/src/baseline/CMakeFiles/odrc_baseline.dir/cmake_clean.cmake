file(REMOVE_RECURSE
  "CMakeFiles/odrc_baseline.dir/deep_checker.cpp.o"
  "CMakeFiles/odrc_baseline.dir/deep_checker.cpp.o.d"
  "CMakeFiles/odrc_baseline.dir/flat_checker.cpp.o"
  "CMakeFiles/odrc_baseline.dir/flat_checker.cpp.o.d"
  "CMakeFiles/odrc_baseline.dir/tile_checker.cpp.o"
  "CMakeFiles/odrc_baseline.dir/tile_checker.cpp.o.d"
  "CMakeFiles/odrc_baseline.dir/xcheck.cpp.o"
  "CMakeFiles/odrc_baseline.dir/xcheck.cpp.o.d"
  "libodrc_baseline.a"
  "libodrc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
