file(REMOVE_RECURSE
  "libodrc_checks.a"
)
