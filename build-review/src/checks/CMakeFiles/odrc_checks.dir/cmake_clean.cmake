file(REMOVE_RECURSE
  "CMakeFiles/odrc_checks.dir/poly_checks.cpp.o"
  "CMakeFiles/odrc_checks.dir/poly_checks.cpp.o.d"
  "CMakeFiles/odrc_checks.dir/violation.cpp.o"
  "CMakeFiles/odrc_checks.dir/violation.cpp.o.d"
  "libodrc_checks.a"
  "libodrc_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odrc_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
