# Empty dependencies file for odrc_checks.
# This may be replaced when dependencies are built.
