
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cross_checker_test.cpp" "tests/CMakeFiles/test_integration.dir/cross_checker_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/cross_checker_test.cpp.o.d"
  "/root/repo/tests/random_layout_test.cpp" "tests/CMakeFiles/test_integration.dir/random_layout_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/random_layout_test.cpp.o.d"
  "/root/repo/tests/render_test.cpp" "tests/CMakeFiles/test_integration.dir/render_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/render_test.cpp.o.d"
  "/root/repo/tests/stress_integration_test.cpp" "tests/CMakeFiles/test_integration.dir/stress_integration_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/stress_integration_test.cpp.o.d"
  "/root/repo/tests/violation_db_test.cpp" "tests/CMakeFiles/test_integration.dir/violation_db_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/violation_db_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/test_integration.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/baseline/CMakeFiles/odrc_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/engine/CMakeFiles/odrc_engine.dir/DependInfo.cmake"
  "/root/repo/build-review/src/render/CMakeFiles/odrc_render.dir/DependInfo.cmake"
  "/root/repo/build-review/src/report/CMakeFiles/odrc_report.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/odrc_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gdsii/CMakeFiles/odrc_gdsii.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lefdef/CMakeFiles/odrc_lefdef.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geo/CMakeFiles/odrc_geo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sweep/CMakeFiles/odrc_sweep.dir/DependInfo.cmake"
  "/root/repo/build-review/src/checks/CMakeFiles/odrc_checks.dir/DependInfo.cmake"
  "/root/repo/build-review/src/partition/CMakeFiles/odrc_partition.dir/DependInfo.cmake"
  "/root/repo/build-review/src/db/CMakeFiles/odrc_db.dir/DependInfo.cmake"
  "/root/repo/build-review/src/device/CMakeFiles/odrc_device.dir/DependInfo.cmake"
  "/root/repo/build-review/src/infra/CMakeFiles/odrc_infra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
