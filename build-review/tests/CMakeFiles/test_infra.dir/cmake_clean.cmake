file(REMOVE_RECURSE
  "CMakeFiles/test_infra.dir/geometry_test.cpp.o"
  "CMakeFiles/test_infra.dir/geometry_test.cpp.o.d"
  "CMakeFiles/test_infra.dir/infra_misc_test.cpp.o"
  "CMakeFiles/test_infra.dir/infra_misc_test.cpp.o.d"
  "CMakeFiles/test_infra.dir/interval_tree_test.cpp.o"
  "CMakeFiles/test_infra.dir/interval_tree_test.cpp.o.d"
  "CMakeFiles/test_infra.dir/pigeonhole_test.cpp.o"
  "CMakeFiles/test_infra.dir/pigeonhole_test.cpp.o.d"
  "test_infra"
  "test_infra.pdb"
  "test_infra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
