file(REMOVE_RECURSE
  "CMakeFiles/test_sweep.dir/device_sweep_test.cpp.o"
  "CMakeFiles/test_sweep.dir/device_sweep_test.cpp.o.d"
  "CMakeFiles/test_sweep.dir/partition_test.cpp.o"
  "CMakeFiles/test_sweep.dir/partition_test.cpp.o.d"
  "CMakeFiles/test_sweep.dir/sweepline_test.cpp.o"
  "CMakeFiles/test_sweep.dir/sweepline_test.cpp.o.d"
  "test_sweep"
  "test_sweep.pdb"
  "test_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
