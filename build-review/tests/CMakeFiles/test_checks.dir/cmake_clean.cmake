file(REMOVE_RECURSE
  "CMakeFiles/test_checks.dir/edge_checks_test.cpp.o"
  "CMakeFiles/test_checks.dir/edge_checks_test.cpp.o.d"
  "CMakeFiles/test_checks.dir/poly_checks_test.cpp.o"
  "CMakeFiles/test_checks.dir/poly_checks_test.cpp.o.d"
  "CMakeFiles/test_checks.dir/poly_edge_cases_test.cpp.o"
  "CMakeFiles/test_checks.dir/poly_edge_cases_test.cpp.o.d"
  "test_checks"
  "test_checks.pdb"
  "test_checks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
