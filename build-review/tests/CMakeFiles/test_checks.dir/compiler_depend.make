# Empty compiler generated dependencies file for test_checks.
# This may be replaced when dependencies are built.
