file(REMOVE_RECURSE
  "CMakeFiles/test_db.dir/db_test.cpp.o"
  "CMakeFiles/test_db.dir/db_test.cpp.o.d"
  "CMakeFiles/test_db.dir/deep_hierarchy_test.cpp.o"
  "CMakeFiles/test_db.dir/deep_hierarchy_test.cpp.o.d"
  "CMakeFiles/test_db.dir/flatten_test.cpp.o"
  "CMakeFiles/test_db.dir/flatten_test.cpp.o.d"
  "CMakeFiles/test_db.dir/gdsii_fuzz_test.cpp.o"
  "CMakeFiles/test_db.dir/gdsii_fuzz_test.cpp.o.d"
  "CMakeFiles/test_db.dir/gdsii_test.cpp.o"
  "CMakeFiles/test_db.dir/gdsii_test.cpp.o.d"
  "CMakeFiles/test_db.dir/lefdef_test.cpp.o"
  "CMakeFiles/test_db.dir/lefdef_test.cpp.o.d"
  "test_db"
  "test_db.pdb"
  "test_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
