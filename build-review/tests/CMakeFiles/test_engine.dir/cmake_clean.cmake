file(REMOVE_RECURSE
  "CMakeFiles/test_engine.dir/coloring_test.cpp.o"
  "CMakeFiles/test_engine.dir/coloring_test.cpp.o.d"
  "CMakeFiles/test_engine.dir/deck_batching_test.cpp.o"
  "CMakeFiles/test_engine.dir/deck_batching_test.cpp.o.d"
  "CMakeFiles/test_engine.dir/deck_parser_test.cpp.o"
  "CMakeFiles/test_engine.dir/deck_parser_test.cpp.o.d"
  "CMakeFiles/test_engine.dir/derived_rules_test.cpp.o"
  "CMakeFiles/test_engine.dir/derived_rules_test.cpp.o.d"
  "CMakeFiles/test_engine.dir/engine_test.cpp.o"
  "CMakeFiles/test_engine.dir/engine_test.cpp.o.d"
  "CMakeFiles/test_engine.dir/host_parallel_test.cpp.o"
  "CMakeFiles/test_engine.dir/host_parallel_test.cpp.o.d"
  "CMakeFiles/test_engine.dir/magnification_test.cpp.o"
  "CMakeFiles/test_engine.dir/magnification_test.cpp.o.d"
  "CMakeFiles/test_engine.dir/prl_spacing_test.cpp.o"
  "CMakeFiles/test_engine.dir/prl_spacing_test.cpp.o.d"
  "CMakeFiles/test_engine.dir/region_check_test.cpp.o"
  "CMakeFiles/test_engine.dir/region_check_test.cpp.o.d"
  "CMakeFiles/test_engine.dir/view_cache_test.cpp.o"
  "CMakeFiles/test_engine.dir/view_cache_test.cpp.o.d"
  "test_engine"
  "test_engine.pdb"
  "test_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
