# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_infra[1]_include.cmake")
include("/root/repo/build-review/tests/test_device[1]_include.cmake")
include("/root/repo/build-review/tests/test_db[1]_include.cmake")
include("/root/repo/build-review/tests/test_sweep[1]_include.cmake")
include("/root/repo/build-review/tests/test_checks[1]_include.cmake")
include("/root/repo/build-review/tests/test_geo[1]_include.cmake")
include("/root/repo/build-review/tests/test_trace[1]_include.cmake")
include("/root/repo/build-review/tests/test_engine[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
add_test(cli_roundtrip "/usr/bin/cmake" "-DODRC_BIN=/root/repo/build-review/tools/odrc" "-DWORK_DIR=/root/repo/build-review/cli_test_work" "-P" "/root/repo/tests/cli_test.cmake")
set_tests_properties(cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")
